// Package spdk simulates an SPDK-class kernel-bypass NVMe device (Table 1,
// left column of the paper, storage side): a namespace of fixed-size
// blocks accessed through asynchronous submission/completion queue pairs,
// with device latencies charged from the cost model.
//
// Like its network sibling (package nic), the device offers no OS
// functionality: no file system, no page cache, no naming. The
// accelerator-specific log-structured layout the paper sketches in §5.3
// lives on top, in blob.go, and the storage libOS (internal/libos/catfish)
// exposes it through Demikernel file queues.
//
// Completions are continuation-carrying: a submitter may attach a
// callback that the device invokes when the command completes, instead of
// surfacing the completion through the shared CQ. That is the mechanism
// behind both the synchronous Execute convenience and the storage
// pushdown engine (pushdown.go), which chains reads entirely inside the
// device without ever crossing back to the host.
package spdk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// BlockSize is the device's logical block size.
const BlockSize = 4096

// Op is an NVMe command opcode.
type Op int

// Command opcodes.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Errors returned by Submit and surfaced in completions.
var (
	ErrQueueFull   = errors.New("spdk: submission queue full")
	ErrOutOfRange  = errors.New("spdk: LBA out of range")
	ErrBadLength   = errors.New("spdk: data length must equal one block")
	ErrDeviceReset = errors.New("spdk: device was reset")
	// ErrIO is an injected transient media error (chaos testing). Unlike
	// ErrDeviceReset it carries no queue-wide abort; retrying the same
	// command usually succeeds.
	ErrIO = errors.New("spdk: media I/O error")
)

// Command is one submission-queue entry.
type Command struct {
	Op  Op
	LBA int
	// Data holds exactly BlockSize bytes for writes; unused for reads
	// and flushes.
	Data []byte
}

// Completion is one completion-queue entry.
type Completion struct {
	ID   uint64
	Op   Op
	LBA  int
	Err  error
	Data []byte // block contents for reads
	Cost simclock.Lat
}

// Config describes a device.
type Config struct {
	NumBlocks  int // namespace capacity in blocks (default 16384)
	QueueDepth int // submission queue depth (default 256)
}

// Stats counts device events.
type Stats struct {
	Reads      int64
	Writes     int64
	Flushes    int64
	QueueFulls int64
	Errors     int64
	DMABytes   int64
	// Chaos counters.
	Resets         int64 // controller resets (spontaneous or requested)
	InjectedErrors int64 // commands failed by the injected error rate
}

// Device is a simulated NVMe namespace with one SQ/CQ pair. All methods
// are safe for concurrent use.
type Device struct {
	model *simclock.CostModel
	cfg   Config

	mu     sync.Mutex
	blocks map[int][]byte
	sq     []sqe
	nextID uint64
	stats  Stats

	// CQ ring: completions without a continuation accumulate in cq and
	// are drained by Poll from cqHead. The backing array is reused: once
	// fully drained it rewinds to the front instead of reallocating.
	cq     []Completion
	cqHead int

	// Completed continuation-carrying entries, staged under mu and
	// dispatched outside it (a continuation may resubmit, which retakes
	// the lock). conts/spare ping-pong so the steady state allocates
	// nothing.
	conts []pendingCont
	spare []pendingCont

	// execFree recycles Execute's wait state.
	execFree []*execState

	// blockFree recycles the one-block staging buffers of
	// device-internal (pushdown) reads, which never escape to the host.
	// A plain freelist under mu: unlike a sync.Pool it recycles without
	// boxing the slice header, keeping the hop path allocation-free.
	blockFree [][]byte

	// pd is the storage-pushdown engine state (pushdown.go).
	pd pushdownState

	// Fault injection (chaos testing).
	rng     *rand.Rand // seeded by SetErrorRate; nil = no injection
	errRate float64    // probability a command fails with ErrIO
	downFor int        // commands still failed while the controller re-inits
}

type sqe struct {
	id  uint64
	cmd Command
	// done, when non-nil, receives the completion instead of the CQ.
	done func(Completion)
	// internal marks a pushdown-engine read: the block stays device-side
	// (no host DMA charged) in a pooled staging buffer that the engine
	// recycles after inspecting it.
	internal bool
}

type pendingCont struct {
	fn func(Completion)
	c  Completion
}

// execState is the pooled wait state behind Execute. The buffered
// channel lets any goroutine's pump deliver the completion.
type execState struct {
	ch chan Completion
	fn func(Completion)
}

// New creates a device.
func New(model *simclock.CostModel, cfg Config) *Device {
	if cfg.NumBlocks <= 0 {
		cfg.NumBlocks = 16384
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	return &Device{model: model, cfg: cfg, blocks: make(map[int][]byte)}
}

// NumBlocks returns the namespace capacity in blocks.
func (d *Device) NumBlocks() int { return d.cfg.NumBlocks }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// RegisterTelemetry lifts the device counters into a telemetry registry
// under prefix (e.g. "nvme"). Sample funcs snapshot Stats() at read time.
func (d *Device) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(d.Stats()) }
	}
	r.RegisterFunc(prefix+".reads", stat(func(s Stats) int64 { return s.Reads }))
	r.RegisterFunc(prefix+".writes", stat(func(s Stats) int64 { return s.Writes }))
	r.RegisterFunc(prefix+".flushes", stat(func(s Stats) int64 { return s.Flushes }))
	r.RegisterFunc(prefix+".queue_fulls", stat(func(s Stats) int64 { return s.QueueFulls }))
	r.RegisterFunc(prefix+".errors", stat(func(s Stats) int64 { return s.Errors }))
	r.RegisterFunc(prefix+".dma_bytes", stat(func(s Stats) int64 { return s.DMABytes }))
	r.RegisterFunc(prefix+".resets", stat(func(s Stats) int64 { return s.Resets }))
	r.RegisterFunc(prefix+".injected_errors", stat(func(s Stats) int64 { return s.InjectedErrors }))
	d.registerPushdownTelemetry(r, prefix+".pushdown")
}

// Submit enqueues a command and returns its completion ID. It fails fast
// with ErrQueueFull when the submission queue is at depth, as a polled
// NVMe driver would observe. The completion surfaces through Poll.
func (d *Device) Submit(cmd Command) (uint64, error) {
	return d.submit(cmd, nil, false)
}

// SubmitFunc enqueues a command whose completion is delivered to done —
// from whichever goroutine next pumps the device — instead of the CQ.
func (d *Device) SubmitFunc(cmd Command, done func(Completion)) (uint64, error) {
	return d.submit(cmd, done, false)
}

func (d *Device) submit(cmd Command, done func(Completion), internal bool) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.submitLocked(cmd, done, internal)
}

func (d *Device) submitLocked(cmd Command, done func(Completion), internal bool) (uint64, error) {
	if len(d.sq) >= d.cfg.QueueDepth {
		d.stats.QueueFulls++
		return 0, ErrQueueFull
	}
	if cmd.Op == OpWrite && len(cmd.Data) != BlockSize {
		return 0, fmt.Errorf("%w: %d", ErrBadLength, len(cmd.Data))
	}
	d.nextID++
	id := d.nextID
	e := sqe{id: id, cmd: cmd, done: done, internal: internal}
	if cmd.Op == OpWrite {
		// The device DMAs the buffer at submission; keep a copy so the
		// caller may reuse its buffer immediately (completion-side
		// free-protection is the libOS's job, not the device's).
		e.cmd.Data = append([]byte(nil), cmd.Data...)
	}
	d.sq = append(d.sq, e)
	return id, nil
}

// Poll processes pending submissions and returns up to max completions
// (0 means all). The returned slice aliases the device's completion
// ring and is valid only until the next Poll — the rx_burst contract:
// consume or copy before polling again.
func (d *Device) Poll(max int) []Completion {
	d.mu.Lock()
	d.processLocked()
	n := len(d.cq) - d.cqHead
	if max > 0 && n > max {
		n = max
	}
	out := d.cq[d.cqHead : d.cqHead+n]
	d.cqHead += n
	if d.cqHead == len(d.cq) {
		// Fully drained: rewind the ring, reusing the backing array.
		d.cq = d.cq[:0]
		d.cqHead = 0
	}
	conts := d.takeContsLocked()
	d.mu.Unlock()
	d.dispatch(conts)
	return out
}

// Pump processes pending submissions and dispatches continuation-
// carrying completions, leaving CQ completions queued for Poll. It
// returns the number of continuations dispatched. LibOS poll loops call
// it to drive Execute waiters and in-flight pushdown traversals.
func (d *Device) Pump() int {
	d.mu.Lock()
	if len(d.sq) > 0 {
		d.processLocked()
	}
	conts := d.takeContsLocked()
	d.mu.Unlock()
	return d.dispatch(conts)
}

// takeContsLocked detaches the staged continuation batch, installing the
// spare buffer (if free) so processing can continue while the batch is
// dispatched outside the lock.
func (d *Device) takeContsLocked() []pendingCont {
	if len(d.conts) == 0 {
		return nil
	}
	out := d.conts
	if d.spare != nil {
		d.conts = d.spare[:0]
		d.spare = nil
	} else {
		d.conts = nil
	}
	return out
}

// dispatch invokes a batch of continuations and returns the batch to the
// spare slot for reuse.
func (d *Device) dispatch(conts []pendingCont) int {
	if len(conts) == 0 {
		return 0
	}
	for i := range conts {
		conts[i].fn(conts[i].c)
		conts[i] = pendingCont{}
	}
	n := len(conts)
	d.mu.Lock()
	if d.spare == nil {
		d.spare = conts[:0]
	}
	d.mu.Unlock()
	return n
}

func (d *Device) processLocked() {
	for _, e := range d.sq {
		c := Completion{ID: e.id, Op: e.cmd.Op, LBA: e.cmd.LBA}
		if d.downFor > 0 {
			// Controller still re-initialising after a reset: every
			// command aborts without touching media.
			d.downFor--
			c.Err = ErrDeviceReset
			d.stats.Errors++
			d.completeLocked(e, c)
			continue
		}
		if d.errRate > 0 && d.rng != nil && d.rng.Float64() < d.errRate {
			// Injected transient media error; the command has no effect.
			d.stats.InjectedErrors++
			c.Err = ErrIO
			d.stats.Errors++
			d.completeLocked(e, c)
			continue
		}
		switch e.cmd.Op {
		case OpRead:
			if e.cmd.LBA < 0 || e.cmd.LBA >= d.cfg.NumBlocks {
				c.Err = ErrOutOfRange
			} else {
				d.stats.Reads++
				blk := d.blocks[e.cmd.LBA]
				if e.internal {
					// Pushdown-internal read: the block stays on the
					// device (no host DMA) in a pooled staging buffer
					// the engine recycles after inspection.
					var data []byte
					if n := len(d.blockFree); n > 0 {
						data = d.blockFree[n-1]
						d.blockFree = d.blockFree[:n-1]
					} else {
						data = make([]byte, BlockSize)
					}
					if len(blk) > 0 {
						copy(data, blk)
					} else {
						clear(data)
					}
					c.Data = data
					c.Cost = d.model.NVMeReadNS
				} else {
					d.stats.DMABytes += BlockSize
					data := make([]byte, BlockSize)
					copy(data, blk)
					c.Data = data
					c.Cost = d.model.NVMeReadNS + d.model.DMACost(BlockSize)
				}
			}
		case OpWrite:
			if e.cmd.LBA < 0 || e.cmd.LBA >= d.cfg.NumBlocks {
				c.Err = ErrOutOfRange
			} else {
				d.stats.Writes++
				d.stats.DMABytes += BlockSize
				d.blocks[e.cmd.LBA] = e.cmd.Data
				c.Cost = d.model.NVMeWriteNS + d.model.DMACost(BlockSize)
			}
		case OpFlush:
			d.stats.Flushes++
			c.Cost = d.model.NVMeWriteNS
		}
		if c.Err != nil {
			d.stats.Errors++
		}
		d.completeLocked(e, c)
	}
	d.sq = d.sq[:0]
}

// completeLocked routes one finished command: continuation-carrying
// entries stage for out-of-lock dispatch, the rest join the CQ ring.
func (d *Device) completeLocked(e sqe, c Completion) {
	if e.done != nil {
		d.conts = append(d.conts, pendingCont{fn: e.done, c: c})
		return
	}
	d.cq = append(d.cq, c)
}

// recycleBlock returns a pushdown staging buffer to the freelist. Safe
// on nil (aborted commands carry no data).
func (d *Device) recycleBlock(b []byte) {
	if len(b) != BlockSize {
		return
	}
	d.mu.Lock()
	d.blockFree = append(d.blockFree, b)
	d.mu.Unlock()
}

// Execute submits cmd and pumps the device until its completion arrives,
// returning it. It is the synchronous convenience used by the blob
// layer. The completion travels by continuation, so foreign completions
// are never scanned or re-queued.
func (d *Device) Execute(cmd Command) Completion {
	st := d.getExecState()
	if _, err := d.submit(cmd, st.fn, false); err != nil {
		d.putExecState(st)
		return Completion{Op: cmd.Op, LBA: cmd.LBA, Err: err}
	}
	for {
		select {
		case c := <-st.ch:
			d.putExecState(st)
			return c
		default:
		}
		d.Pump()
	}
}

func (d *Device) getExecState() *execState {
	d.mu.Lock()
	if n := len(d.execFree); n > 0 {
		st := d.execFree[n-1]
		d.execFree = d.execFree[:n-1]
		d.mu.Unlock()
		return st
	}
	d.mu.Unlock()
	st := &execState{ch: make(chan Completion, 1)}
	st.fn = func(c Completion) { st.ch <- c }
	return st
}

func (d *Device) putExecState(st *execState) {
	d.mu.Lock()
	d.execFree = append(d.execFree, st)
	d.mu.Unlock()
}

// Reset clears queues and storage, as a factory-level namespace format
// would. (For a media-preserving controller reset, see ControllerReset.)
func (d *Device) Reset() {
	d.mu.Lock()
	d.abortInflightLocked()
	d.blocks = make(map[int][]byte)
	conts := d.takeContsLocked()
	d.mu.Unlock()
	d.dispatch(conts)
}

// ControllerReset simulates a spontaneous NVMe controller reset: every
// in-flight command aborts with ErrDeviceReset and the next downFor
// submitted commands also fail while the controller re-initialises.
// Media contents are preserved — after recovery, retried commands see
// the data that was durably written before the reset. In-flight pushdown
// traversals surface exactly one typed error completion each (their
// aborted read's continuation runs like any other).
func (d *Device) ControllerReset(downFor int) {
	d.mu.Lock()
	d.stats.Resets++
	d.abortInflightLocked()
	if downFor > 0 {
		d.downFor = downFor
	}
	conts := d.takeContsLocked()
	d.mu.Unlock()
	d.dispatch(conts)
}

func (d *Device) abortInflightLocked() {
	for _, e := range d.sq {
		d.stats.Errors++
		d.completeLocked(e, Completion{ID: e.id, Op: e.cmd.Op, LBA: e.cmd.LBA, Err: ErrDeviceReset})
	}
	d.sq = d.sq[:0]
}

// SetErrorRate arms (or, with rate 0, disarms) seeded random command
// failures: each processed command fails with ErrIO with probability
// rate. Deterministic for a fixed seed and command sequence.
func (d *Device) SetErrorRate(rate float64, seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.errRate = rate
	if rate > 0 {
		d.rng = rand.New(rand.NewSource(seed))
	} else {
		d.rng = nil
	}
}
