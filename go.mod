module demikernel

go 1.23
