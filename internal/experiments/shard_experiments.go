package experiments

import (
	"fmt"

	demi "demikernel"
	"demikernel/internal/apps/kv"
	"demikernel/internal/metrics"
)

// ShardScalePoint is one point of the multi-core scaling curve: an
// RSS-sharded KV server with Shards workers, driven by an aligned
// client, measured in virtual time.
//
// Real wall-clock scaling cannot be measured here — the simulation runs
// on however many cores the host happens to have — so the curve uses the
// cost model the same way every experiment does: each shard accumulates
// the modeled single-core cost of the work it executed (syscall, user
// netstack, NIC processing, application compute per request). A
// deployment pins one shard per core, so aggregate throughput is gated
// by the busiest shard: Throughput = TotalOps / max_i busy_i.
type ShardScalePoint struct {
	Shards       int
	Ops          int64   // requests served across all shards
	MaxBusyVirtM float64 // busiest shard's virtual busy time, ms
	ThroughputK  float64 // virtual kOps/s = Ops / max busy
	ForwardedOut int64   // mesh forwards (0 when the client is aligned)
}

// RunShardScale measures one scaling point. aligned selects whether the
// client routes each key over its owning shard's connection (the RSS
// partition working as designed) or sprays every request over shard 0's
// connection (forcing the mesh-forward slow path).
func RunShardScale(seed int64, shards, setsGets int, aligned bool) (ShardScalePoint, error) {
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1), demi.WithShards(shards)).Sharded
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))

	server := kv.NewShardedServer(srvNode.Libs, &c.Model, srvNode.Mesh())
	const port = 6379
	if err := server.Listen(port); err != nil {
		return ShardScalePoint{}, err
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	defer func() { close(stop); wg.Wait() }()
	stopCli := cliNode.Background()
	defer stopCli()

	client, err := kv.NewShardedClient(cliNode.LibOS, shards, func(i int) (demi.QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, i, uint16(2048*i+101))
	})
	if err != nil {
		return ShardScalePoint{}, err
	}
	defer client.Close()

	val := []byte("0123456789abcdef0123456789abcdef") // 32 B values
	for i := 0; i < setsGets; i++ {
		key := fmt.Sprintf("bench-key-%04d", i)
		if aligned {
			if _, err := client.Set(key, val); err != nil {
				return ShardScalePoint{}, fmt.Errorf("set %s: %w", key, err)
			}
		} else {
			if _, err := client.SetOn(0, key, val); err != nil {
				return ShardScalePoint{}, fmt.Errorf("set %s: %w", key, err)
			}
		}
	}
	for i := 0; i < setsGets; i++ {
		key := fmt.Sprintf("bench-key-%04d", i)
		var found bool
		if aligned {
			_, _, found, err = client.Get(key)
		} else {
			_, found, err = client.GetOn(0, key)
		}
		if err != nil || !found {
			return ShardScalePoint{}, fmt.Errorf("get %s: found=%v err=%w", key, found, err)
		}
	}

	p := ShardScalePoint{Shards: shards, Ops: server.TotalOps()}
	var maxBusy int64
	for i := 0; i < shards; i++ {
		if b := server.BusyVirt(i); b > maxBusy {
			maxBusy = b
		}
		p.ForwardedOut += server.StatsOf(i).ForwardedOut
	}
	p.MaxBusyVirtM = float64(maxBusy) / 1e6
	if maxBusy > 0 {
		p.ThroughputK = float64(p.Ops) / (float64(maxBusy) / 1e9) / 1e3
	}
	return p, nil
}

// runE14 reproduces the §3.1 scale-out claim: a share-nothing sharded
// server scales with cores because nothing on the per-request path is
// shared — and mis-partitioned work (requests landing on the wrong
// shard) erodes exactly that advantage.
func runE14(seed int64) (*Result, error) {
	res := &Result{}
	tbl := metrics.NewTable("Multi-core scaling: RSS-sharded KV (virtual time)",
		"shards", "ops", "busiest shard (ms)", "kOps/s (virtual)", "speedup", "mesh forwards")

	const setsGets = 256
	var points []ShardScalePoint
	for _, n := range []int{1, 2, 4, 8} {
		p, err := RunShardScale(seed, n, setsGets, true)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", n, err)
		}
		points = append(points, p)
	}
	base := points[0].ThroughputK
	for _, p := range points {
		tbl.AddRow(p.Shards, p.Ops, fmt.Sprintf("%.3f", p.MaxBusyVirtM),
			fmt.Sprintf("%.1f", p.ThroughputK), fmt.Sprintf("%.2fx", p.ThroughputK/base), p.ForwardedOut)
	}
	res.Tables = append(res.Tables, tbl)

	// The counter-case: every request arrives at shard 0 and rides the
	// mesh to its owner.
	mis, err := RunShardScale(seed, 4, setsGets, false)
	if err != nil {
		return nil, fmt.Errorf("misdirected: %w", err)
	}
	mtbl := metrics.NewTable("Mis-partitioned counter-case (4 shards, all requests via shard 0)",
		"client", "kOps/s (virtual)", "mesh forwards")
	aligned4 := points[2]
	mtbl.AddRow("aligned (RSS-partitioned)", fmt.Sprintf("%.1f", aligned4.ThroughputK), aligned4.ForwardedOut)
	mtbl.AddRow("misdirected (all via shard 0)", fmt.Sprintf("%.1f", mis.ThroughputK), mis.ForwardedOut)
	res.Tables = append(res.Tables, mtbl)

	speedup4 := points[2].ThroughputK / base
	res.check("4-shard speedup >= 2.5x", speedup4 >= 2.5,
		"4 shards reach %.2fx the 1-shard virtual throughput (floor 2.5x)", speedup4)
	mono := points[1].ThroughputK > points[0].ThroughputK &&
		points[2].ThroughputK > points[1].ThroughputK &&
		points[3].ThroughputK > points[2].ThroughputK
	res.check("throughput grows with shard count", mono,
		"1->2->4->8 shards: %.1f -> %.1f -> %.1f -> %.1f kOps/s",
		points[0].ThroughputK, points[1].ThroughputK, points[2].ThroughputK, points[3].ThroughputK)
	var fwd int64
	for _, p := range points {
		fwd += p.ForwardedOut
	}
	res.check("aligned clients never cross the mesh", fwd == 0,
		"total mesh forwards under aligned load = %d", fwd)
	res.check("misdirection costs throughput", mis.ThroughputK < aligned4.ThroughputK && mis.ForwardedOut > 0,
		"aligned %.1f vs misdirected %.1f kOps/s (%d forwards)",
		aligned4.ThroughputK, mis.ThroughputK, mis.ForwardedOut)
	return res, nil
}
