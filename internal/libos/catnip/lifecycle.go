// Node lifecycle for the catnip libOS: Crash drops the stack the way a
// process death does — instantly, rudely, with no FIN and no goodbye —
// and Restart reconstitutes it on the same device, MAC, and IP.
//
// This is the paper's §3 warning reproduced as a mechanism: with
// kernel bypass, the TCP state machine, the pinned buffers, and the
// pending qtokens all live in the dying process. The kernel keeps
// nothing, so the *simulation* must model what is lost (connections,
// in-flight operations) and what must be reclaimed (pooled frames,
// device rings) — and LibrettOS-style recovery means the application's
// listening queues re-bind to the reborn stack without the application
// re-running its setup.
package catnip

import (
	"errors"

	"demikernel/internal/queue"
	"demikernel/internal/telemetry"
)

// ErrNotCrashed is returned by Restart when the transport is running.
var ErrNotCrashed = errors.New("catnip: restart of a running stack")

// Crash tears the transport down as a process crash would: the netstack
// is shut down in place (connections terminal, OOO pooled buffers
// released, listeners unbound, queued datagrams recycled), every
// endpoint's pending qtokens complete immediately with the typed
// crash error (errors.Is(err, core.ErrLocalReset)), un-popped pooled
// pop payloads are released back to their pool, and the poll path is
// gated off behind the crashed flag. Nothing is transmitted — peers
// discover the death through their own retransmission budgets.
//
// Crash returns the number of qtokens it aborted. It is idempotent;
// repeated calls return 0.
func (t *Transport) Crash() int {
	if !t.crashed.CompareAndSwap(false, true) {
		return 0
	}
	telemetry.TraceInstant("lifecycle", "crash", int32(t.rxQueue), 0)
	t.Stack().Shutdown(errCrashed)
	t.statsMu.Lock()
	t.crashes++
	t.statsMu.Unlock()
	t.mu.Lock()
	eps := append([]*endpoint(nil), t.eps...)
	udps := append([]*udpEndpoint(nil), t.udps...)
	t.mu.Unlock()
	n := 0
	for _, ep := range eps {
		n += ep.kill(errCrashed)
	}
	for _, ep := range udps {
		n += ep.kill(errCrashed)
	}
	return n
}

// Crashed reports whether the transport is currently down.
func (t *Transport) Crashed() bool { return t.crashed.Load() }

// Restart brings a crashed transport back on the same device, MAC, and
// IP: the dead incarnation's counters are folded into the cumulative
// base, a fresh netstack is swapped in, listener endpoints are re-armed
// on it (the application's existing listening QDs keep working — the
// LibrettOS dynamic re-binding recovery), bound UDP sockets are
// rebound, and a gratuitous ARP announces the reborn node. Established
// data endpoints stay dead with their typed error, exactly like stale
// file descriptors after exec: the peer must redial.
func (t *Transport) Restart() error {
	if !t.crashed.Load() {
		return ErrNotCrashed
	}
	old := t.Stack()
	t.statsMu.Lock()
	t.prevStats = t.prevStats.Add(old.Stats())
	t.restarts++
	t.statsMu.Unlock()
	fresh := buildStack(t.model, t.port, t.cfg, t.rxQueue, t.pool, t.neigh)
	t.stackp.Store(fresh)
	t.mu.Lock()
	eps := append([]*endpoint(nil), t.eps...)
	udps := append([]*udpEndpoint(nil), t.udps...)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.rearm()
	}
	for _, ep := range udps {
		ep.revive()
	}
	// Un-gate the poll path only once the fresh stack is fully armed.
	t.crashed.Store(false)
	telemetry.TraceInstant("lifecycle", "restart", int32(t.rxQueue), 0)
	fresh.AnnounceARP()
	return nil
}

// Crashes and Restarts report the cumulative lifecycle counts (for
// telemetry assertions in tests).
func (t *Transport) Lifetimes() (crashes, restarts int64) {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.crashes, t.restarts
}

// Crash tears down every shard of the set the way a whole-process crash
// does: each shard's stack dies in place and every pending qtoken
// completes with the typed crash error. The shared NIC's receive rings
// are then flushed — frames the dead stacks never ingested go back to
// their pools, counted in nic RxFlushed; this is the device-side
// resource reclamation of Beadle et al.'s safe sharing, performed here
// by the simulated device model on behalf of the dead client. Returns
// the number of qtokens aborted plus frames flushed.
func (s *ShardSet) Crash() int {
	n := 0
	for _, t := range s.shards {
		n += t.Crash()
	}
	if s.qg != nil {
		// Tenant crash on a shared NIC: flush only the tenant's own
		// queue range (and its pending TX) — neighbours keep their
		// frames and their link.
		n += s.qg.FlushRings()
	} else {
		n += s.dev.FlushRings()
	}
	return n
}

// Crashed reports whether the set is down (true iff shard 0 is down;
// shards crash and restart together).
func (s *ShardSet) Crashed() bool { return s.shards[0].Crashed() }

// Restart reconstitutes every shard on the same device, MAC, and IP.
// The shared neighbor table is generation-invalidated first, so no
// resolution learned by the dead incarnation can shadow the reborn one
// (the stale-ARP black hole the NeighborTable generations exist for);
// then each shard gets a fresh stack, re-armed listeners, and announces
// itself with a gratuitous ARP.
func (s *ShardSet) Restart() error {
	s.neigh.InvalidateAll()
	for _, t := range s.shards {
		if err := t.Restart(); err != nil {
			return err
		}
	}
	return nil
}

// kill stamps the endpoint with the crash error: every pending qtoken
// (pop waiters and staged pushes) completes with err, staging buffers
// free, and un-popped pooled pop payloads are released — the frame-
// conservation half of dying cleanly. Data endpoints become terminal
// (e.dead); listener endpoints stay revivable for rearm. Returns the
// number of qtokens aborted.
func (e *endpoint) kill(err error) int {
	e.mu.Lock()
	isListener := e.listener != nil
	ready := e.ready
	e.ready = nil
	e.readyLen.Store(0)
	ws := e.waiters
	e.waiters = nil
	e.waiterLen.Store(0)
	txq := e.txq
	e.txq = nil
	e.txPending.Store(0)
	e.conn = nil
	if !isListener {
		e.dead = err
	}
	e.mu.Unlock()
	e.connp.Store(nil)
	for i := range ready {
		ready[i].SGA.Free() // un-popped pooled clones go home
	}
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
	for i := range txq {
		if txq[i].buf != nil {
			txq[i].buf.Free()
		}
		txq[i].done(queue.Completion{Kind: queue.OpPush, Err: err})
	}
	return len(ws) + len(txq)
}

// rearm re-binds a listener endpoint onto the (fresh) current stack so
// the application's listening QD survives the crash.
func (e *endpoint) rearm() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener == nil || e.closed {
		return
	}
	if l, err := e.t.Stack().ListenTCP(e.bound.Port); err == nil {
		e.listener = l
	}
}

// kill is the datagram flavor: waiters fail, pooled datagram payloads
// release, and the endpoint goes dead until revive.
func (e *udpEndpoint) kill(err error) int {
	e.mu.Lock()
	ready := e.ready
	e.ready = nil
	ws := e.waiters
	e.waiters = nil
	e.sock = nil // the stack shutdown already recycled its queue
	e.dead = err
	e.mu.Unlock()
	for i := range ready {
		ready[i].SGA.Free()
	}
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: err})
	}
	return len(ws)
}

// revive rebinds the datagram socket on the fresh stack at its original
// port (explicitly bound sockets keep their port; connected-UDP sockets
// get a fresh ephemeral one) and clears the dead stamp.
func (e *udpEndpoint) revive() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.dead = nil
	if e.sock == nil {
		if err := e.ensureSockLocked(e.bound.Port); err != nil {
			e.dead = err
		}
	}
}
