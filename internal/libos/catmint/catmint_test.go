package catmint_test

import (
	"bytes"
	"errors"
	"testing"

	demi "demikernel"
	"demikernel/internal/libos/catmint"
)

func pair(t *testing.T, seed int64, postedRecvs int) (*demi.Cluster, *demi.Node, *demi.Node, func()) {
	t.Helper()
	c := demi.NewCluster(seed)
	srv := c.MustSpawn(demi.Catmint, demi.WithConfig(demi.NodeConfig{Host: 1, PostedRecvs: postedRecvs}))
	cli := c.MustSpawn(demi.Catmint, demi.WithConfig(demi.NodeConfig{Host: 2, PostedRecvs: postedRecvs}))
	stop1 := srv.Background()
	stop2 := cli.Background()
	return c, srv, cli, func() { stop2(); stop1() }
}

func connect(t *testing.T, c *demi.Cluster, srv, cli *demi.Node, port uint16) (cqd, sqd demi.QD) {
	t.Helper()
	lqd, err := srv.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Bind(lqd, demi.Addr{Port: port}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	cqd, err = cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(cqd, c.AddrOf(srv, port)); err != nil {
		t.Fatal(err)
	}
	sqd, err = srv.Accept(lqd)
	if err != nil {
		t.Fatal(err)
	}
	return cqd, sqd
}

func TestZeroCopyFromAllocSGA(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 61, 0)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 7)

	// Registered path: AllocSGA buffers carry a pool token.
	s := cli.AllocSGA(256)
	copy(s.Segments[0].Buf, bytes.Repeat([]byte{0xAB}, 256))
	if _, err := cli.BlockingPush(cqd, s); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.BlockingPop(sqd); err != nil {
		t.Fatal(err)
	}
	if cli.Catmint.ZeroCopyTx() != 1 {
		t.Fatalf("ZeroCopyTx = %d, want 1", cli.Catmint.ZeroCopyTx())
	}
	if cli.Catmint.StagedCopies() != 0 {
		t.Fatalf("StagedCopies = %d, want 0", cli.Catmint.StagedCopies())
	}

	// Unregistered heap memory: the push must stage (and be counted).
	if _, err := cli.BlockingPush(cqd, demi.NewSGA(make([]byte, 256))); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.BlockingPop(sqd); err != nil {
		t.Fatal(err)
	}
	if cli.Catmint.StagedCopies() != 1 {
		t.Fatalf("StagedCopies = %d, want 1", cli.Catmint.StagedCopies())
	}
}

func TestMessageTooBigRejected(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 62, 0)
	defer cleanup()
	cqd, _ := connect(t, c, srv, cli, 7)
	huge := demi.NewSGA(make([]byte, catmint.SlotSize+1))
	comp, err := cli.BlockingPush(cqd, huge)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(comp.Err, catmint.ErrMessageTooBig) {
		t.Fatalf("err = %v", comp.Err)
	}
}

func TestArenaAmortisation(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 63, 0)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 7)
	for i := 0; i < 50; i++ {
		if _, err := cli.BlockingPush(cqd, demi.NewSGA([]byte("msg"))); err != nil {
			t.Fatal(err)
		}
		comp, err := srv.BlockingPop(sqd)
		if err != nil {
			t.Fatal(err)
		}
		comp.SGA.Free() // return the recv slot so the pool stays small
	}
	if got := cli.Catmint.Arenas(); got > 2 {
		t.Fatalf("client arenas = %d; slot pool not being recycled", got)
	}
}

func TestPostedReceiveWindowMaintained(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 64, 16)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 7)
	// Drive traffic; the libOS must keep re-posting receives so the
	// window never empties.
	for i := 0; i < 40; i++ {
		if _, err := cli.BlockingPush(cqd, demi.NewSGA([]byte("keepalive"))); err != nil {
			t.Fatal(err)
		}
		comp, err := srv.BlockingPop(sqd)
		if err != nil {
			t.Fatal(err)
		}
		comp.SGA.Free()
	}
	if rnr := srv.Catmint.Device().Stats().RNRNaks; rnr != 0 {
		t.Fatalf("libOS-managed receives hit RNR %d times", rnr)
	}
}

func TestBidirectional(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 65, 0)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 7)
	if _, err := srv.BlockingPush(sqd, demi.NewSGA([]byte("server speaks first"))); err != nil {
		t.Fatal(err)
	}
	comp, err := cli.BlockingPop(cqd)
	if err != nil {
		t.Fatal(err)
	}
	if string(comp.SGA.Bytes()) != "server speaks first" {
		t.Fatalf("got %q", comp.SGA.Bytes())
	}
}

func TestSegmentationPreservedOverRDMA(t *testing.T) {
	c, srv, cli, cleanup := pair(t, 66, 0)
	defer cleanup()
	cqd, sqd := connect(t, c, srv, cli, 7)
	s := demi.NewSGA([]byte("a"), nil, []byte("ccc"), []byte("dd"))
	if _, err := cli.BlockingPush(cqd, s); err != nil {
		t.Fatal(err)
	}
	comp, err := srv.BlockingPop(sqd)
	if err != nil {
		t.Fatal(err)
	}
	if comp.SGA.NumSegments() != 4 || !comp.SGA.Equal(s) {
		t.Fatalf("segmentation lost: %v", comp.SGA)
	}
}

func TestFeatures(t *testing.T) {
	_, srv, _, cleanup := pair(t, 67, 0)
	defer cleanup()
	f := srv.Features()
	if !f.KernelBypass || !f.HWTransport {
		t.Fatalf("catmint features wrong: %+v", f)
	}
}
