package netstack

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// Device is the poll-mode NIC surface the stack drives: transmit a
// frame, poll a receive queue, know its own MAC. *nic.Device satisfies
// it, and so does *nic.QueueGroup — a multi-tenant stack binds to its
// tenant's slice of a shared NIC exactly as a single-tenant stack binds
// to a whole device, with no branch anywhere on the data path.
type Device interface {
	MAC() fabric.MAC
	Tx(data []byte, cost simclock.Lat)
	TxFrame(f fabric.Frame)
	AppendRxBurst(dst []fabric.Frame, queue, max int) []fabric.Frame
}

// Config describes one stack instance.
type Config struct {
	// IP is the stack's address on the fabric's single L2 segment.
	IP IPv4Addr
	// MSS is the maximum TCP segment payload (default 1400).
	MSS int
	// RxWindow is the TCP receive buffer per connection (default 64 KiB).
	RxWindow int
	// RTO is the initial TCP retransmission timeout (default 20 ms;
	// short because the simulated fabric has microsecond delays).
	RTO time.Duration
	// MaxRetransmits caps how many consecutive times one segment (or
	// SYN) is retransmitted before the connection gives up with
	// ErrMaxRetransmits (default 8). Without the cap, a partitioned
	// peer keeps the connection retrying forever — the silent hang a
	// kernel-bypass stack must not have, because nobody below it will
	// time the peer out (§2: failure handling is the library's job).
	MaxRetransmits int
	// PerPacketExtra is an additional per-packet processing cost. A
	// plain Demikernel libOS leaves it zero; the mTCP-style
	// POSIX-preserving configuration (§6) charges the POSIX emulation
	// tax here.
	PerPacketExtra simclock.Lat
	// RxQueue is the NIC receive queue this stack polls (default 0).
	// A sharded libOS runs one stack per queue; RSS keeps each flow's
	// segments arriving on the queue whose stack owns the connection.
	RxQueue int
	// Pool supplies frame and staging buffers (default: the process-wide
	// fabric.DefaultFramePool). Sharded deployments pass a per-shard pool
	// so buffer recycling never crosses shard cache lines.
	Pool *fabric.FramePool
	// Neighbors, when non-nil, is a resolution table shared with sibling
	// shard stacks: learns are published to it and misses consult it
	// before falling back to an ARP request. See NeighborTable.
	Neighbors *NeighborTable
	// Clock, when non-nil, replaces time.Now as the stack's notion of
	// wall time for RTO timers. The chaos engine plugs a
	// simclock.DriftClock in here to model per-node clock skew: a
	// fast-running clock fires retransmission timers early, a slow one
	// late — the paper's point that protocol timekeeping now lives in
	// the library, where nothing keeps node clocks honest.
	Clock func() time.Time
}

// Stats counts stack events.
type Stats struct {
	FramesIn        int64
	ARPRequests     int64
	ARPReplies      int64
	TCPSegsSent     int64
	TCPSegsRcvd     int64
	Retransmits     int64
	FastRetransmits int64
	DupAcksRcvd     int64
	OutOfOrderSegs  int64
	BadChecksums    int64
	UDPSent         int64
	UDPRcvd         int64
	NoListener      int64
	RSTsSent        int64
	RSTsRcvd        int64
	// GiveUps counts connections terminated by the retransmission cap
	// or the connect timeout (dead-peer detections).
	GiveUps int64
	// TxQuotaDrops counts outgoing packets dropped because the frame
	// pool refused the allocation (tenant frame quota exhausted). TCP
	// recovers by retransmission; UDP senders simply lose the datagram —
	// quota exhaustion behaves like any other packet loss.
	TxQuotaDrops int64
	// RxQuotaDrops counts received UDP datagrams dropped because pooled
	// copy-out storage was refused by the quota.
	RxQuotaDrops int64
}

// Add returns the field-wise sum of two stats snapshots. The lifecycle
// layer uses it to keep conservation counters cumulative across a
// crash/restart: frames ingested by a dead stack incarnation still
// happened, and the demi-stat selftest must see them.
func (a Stats) Add(b Stats) Stats {
	return Stats{
		FramesIn:        a.FramesIn + b.FramesIn,
		ARPRequests:     a.ARPRequests + b.ARPRequests,
		ARPReplies:      a.ARPReplies + b.ARPReplies,
		TCPSegsSent:     a.TCPSegsSent + b.TCPSegsSent,
		TCPSegsRcvd:     a.TCPSegsRcvd + b.TCPSegsRcvd,
		Retransmits:     a.Retransmits + b.Retransmits,
		FastRetransmits: a.FastRetransmits + b.FastRetransmits,
		DupAcksRcvd:     a.DupAcksRcvd + b.DupAcksRcvd,
		OutOfOrderSegs:  a.OutOfOrderSegs + b.OutOfOrderSegs,
		BadChecksums:    a.BadChecksums + b.BadChecksums,
		UDPSent:         a.UDPSent + b.UDPSent,
		UDPRcvd:         a.UDPRcvd + b.UDPRcvd,
		NoListener:      a.NoListener + b.NoListener,
		RSTsSent:        a.RSTsSent + b.RSTsSent,
		RSTsRcvd:        a.RSTsRcvd + b.RSTsRcvd,
		GiveUps:         a.GiveUps + b.GiveUps,
		TxQuotaDrops:    a.TxQuotaDrops + b.TxQuotaDrops,
		RxQuotaDrops:    a.RxQuotaDrops + b.RxQuotaDrops,
	}
}

// Errors returned by the stack.
var (
	ErrPortInUse      = errors.New("netstack: port in use")
	ErrConnClosed     = errors.New("netstack: connection closed")
	ErrBufferFull     = errors.New("netstack: send buffer full")
	ErrNotEstablished = errors.New("netstack: not established")
	// ErrMaxRetransmits is the terminal error of an established
	// connection whose peer stopped acknowledging: the retransmission
	// cap was exhausted (dead-peer detection).
	ErrMaxRetransmits = errors.New("netstack: peer unresponsive (max retransmits exceeded)")
	// ErrConnectTimeout is the terminal error of a connection attempt
	// whose SYN (or SYN|ACK) was never answered within the retransmit
	// budget.
	ErrConnectTimeout = errors.New("netstack: connection establishment timed out")
)

type connKey struct {
	localPort  uint16
	remoteIP   IPv4Addr
	remotePort uint16
}

type pendingPkt struct {
	etherType uint16
	payload   []byte
	cost      simclock.Lat
}

// Stack is one user-level TCP/IP instance bound to a simulated NIC.
// All methods are safe for concurrent use; the data path is driven by
// Poll, which the owning libOS pumps from its wait loop.
type Stack struct {
	model *simclock.CostModel
	dev   Device
	cfg   Config

	pool *fabric.FramePool // cfg.Pool or fabric.DefaultFramePool

	mu         sync.Mutex
	arp        map[IPv4Addr]fabric.MAC // private cache; misses consult cfg.Neighbors
	arpPending map[IPv4Addr][]pendingPkt
	conns      map[connKey]*TCPConn
	listeners  map[uint16]*TCPListener
	udp        map[uint16]*UDPSock
	ipID       uint16
	nextPort   uint16
	issCounter uint32
	now        func() time.Time
	stats      Stats

	// Hot-path scratch, guarded by mu and reused across calls so the
	// steady-state data path does not allocate: rxBatch is the receive
	// burst buffer handed to nic.AppendRxBurst, l4buf the transport-header
	// marshal buffer (its contents are always copied into the outgoing
	// frame before the next use).
	rxBatch []fabric.Frame
	l4buf   []byte
}

// New creates a stack for dev with the given configuration.
func New(model *simclock.CostModel, dev Device, cfg Config) *Stack {
	if cfg.MSS <= 0 {
		cfg.MSS = 1400
	}
	if cfg.RxWindow <= 0 {
		cfg.RxWindow = 64 * 1024
	}
	if cfg.RTO <= 0 {
		cfg.RTO = 20 * time.Millisecond
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = 8
	}
	pool := cfg.Pool
	if pool == nil {
		pool = fabric.DefaultFramePool
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Stack{
		model:      model,
		dev:        dev,
		cfg:        cfg,
		pool:       pool,
		arp:        make(map[IPv4Addr]fabric.MAC),
		arpPending: make(map[IPv4Addr][]pendingPkt),
		conns:      make(map[connKey]*TCPConn),
		listeners:  make(map[uint16]*TCPListener),
		udp:        make(map[uint16]*UDPSock),
		nextPort:   49152,
		now:        clock,
	}
}

// IP returns the stack's address.
func (s *Stack) IP() IPv4Addr { return s.cfg.IP }

// Shutdown terminates the whole stack instantly, as a process crash
// would: every connection (including handshakes parked in a listener
// backlog) becomes terminal with cause, every stashed out-of-order
// pooled buffer is released, every listener unbound, every queued UDP
// datagram recycled, and every send parked behind ARP resolution
// discarded. Nothing is transmitted — a crashed libOS sends no FIN, no
// RST; the *peer's* retransmission budget is what detects the death
// (§3: the state needed for orderly teardown died with the process, so
// the simulation must reproduce the messy version).
//
// Shutdown is idempotent. The stack stays usable only as a tombstone:
// the owning transport replaces it on Restart.
func (s *Stack) Shutdown(cause error) {
	if cause == nil {
		cause = ErrConnClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, c := range s.conns {
		c.err = cause
		c.state = stateClosed
		c.clearTimerLocked()
		c.releaseOOOLocked()
		c.updateReadyLocked()
		delete(s.conns, key)
	}
	for port, l := range s.listeners {
		l.closed = true
		l.backlog = nil // backlog conns were terminated via s.conns above
		delete(s.listeners, port)
	}
	for port, u := range s.udp {
		for i := range u.rx {
			u.rx[i].Free()
		}
		u.rx = nil
		delete(s.udp, port)
	}
	// Sends parked behind ARP are heap-backed copies; just drop them.
	for ip := range s.arpPending {
		delete(s.arpPending, ip)
	}
}

// AnnounceARP broadcasts a gratuitous ARP (an unsolicited reply naming
// ourselves), refreshing every peer's cache after a restart so the
// reborn stack is reachable without waiting for a request. Real stacks
// do exactly this on address (re)configuration.
func (s *Stack) AnnounceARP() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ARPReplies++
	ann := arpPacket{
		op:       arpOpReply,
		senderHW: s.dev.MAC(),
		senderIP: s.cfg.IP,
		targetHW: fabric.Broadcast,
		targetIP: s.cfg.IP,
	}
	frame := appendEth(nil, fabric.Broadcast, s.dev.MAC(), etherTypeARP)
	frame = ann.marshal(frame)
	s.dev.Tx(frame, 0)
}

// Stats returns a snapshot of the stack's counters.
func (s *Stack) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RegisterTelemetry lifts the stack's counters into a telemetry registry
// under prefix (e.g. "netstack"). Sample funcs snapshot Stats() at read
// time, so registration adds nothing to the data path.
func (s *Stack) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	RegisterStatsTelemetry(r, prefix, s.Stats)
}

// RegisterStatsTelemetry registers the standard netstack counter names
// against an arbitrary stats source. A lifecycle-aware libOS passes a
// source that sums the live stack with its dead predecessors, so
// counters survive a crash/restart instead of resetting.
func RegisterStatsTelemetry(r *telemetry.Registry, prefix string, src func() Stats) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(src()) }
	}
	r.RegisterFunc(prefix+".frames_in", stat(func(st Stats) int64 { return st.FramesIn }))
	r.RegisterFunc(prefix+".arp_requests", stat(func(st Stats) int64 { return st.ARPRequests }))
	r.RegisterFunc(prefix+".arp_replies", stat(func(st Stats) int64 { return st.ARPReplies }))
	r.RegisterFunc(prefix+".tcp_segs_sent", stat(func(st Stats) int64 { return st.TCPSegsSent }))
	r.RegisterFunc(prefix+".tcp_segs_rcvd", stat(func(st Stats) int64 { return st.TCPSegsRcvd }))
	r.RegisterFunc(prefix+".retransmits", stat(func(st Stats) int64 { return st.Retransmits }))
	r.RegisterFunc(prefix+".fast_retransmits", stat(func(st Stats) int64 { return st.FastRetransmits }))
	r.RegisterFunc(prefix+".dup_acks_rcvd", stat(func(st Stats) int64 { return st.DupAcksRcvd }))
	r.RegisterFunc(prefix+".out_of_order_segs", stat(func(st Stats) int64 { return st.OutOfOrderSegs }))
	r.RegisterFunc(prefix+".bad_checksums", stat(func(st Stats) int64 { return st.BadChecksums }))
	r.RegisterFunc(prefix+".udp_sent", stat(func(st Stats) int64 { return st.UDPSent }))
	r.RegisterFunc(prefix+".udp_rcvd", stat(func(st Stats) int64 { return st.UDPRcvd }))
	r.RegisterFunc(prefix+".no_listener", stat(func(st Stats) int64 { return st.NoListener }))
	r.RegisterFunc(prefix+".rsts_sent", stat(func(st Stats) int64 { return st.RSTsSent }))
	r.RegisterFunc(prefix+".rsts_rcvd", stat(func(st Stats) int64 { return st.RSTsRcvd }))
	r.RegisterFunc(prefix+".give_ups", stat(func(st Stats) int64 { return st.GiveUps }))
	r.RegisterFunc(prefix+".tx_quota_drops", stat(func(st Stats) int64 { return st.TxQuotaDrops }))
	r.RegisterFunc(prefix+".rx_quota_drops", stat(func(st Stats) int64 { return st.RxQuotaDrops }))
}

// Poll pumps the data path once: it drains received frames from the NIC,
// advances protocol state machines, fires retransmission timers, and
// transmits whatever became ready. It returns the number of frames
// processed, so callers can back off when idle.
func (s *Stack) Poll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	// Sharded mode: resolutions learned by the ARP-owning sibling shard
	// land in the shared table; flush any sends parked behind them. This
	// is a miss-path check — arpPending is empty in steady state.
	if s.cfg.Neighbors != nil && len(s.arpPending) > 0 {
		for ip := range s.arpPending {
			if mac, ok := s.cfg.Neighbors.Lookup(ip); ok {
				s.arp[ip] = mac
				s.flushARPPendingLocked(ip)
			}
		}
	}
	for {
		// One burst per pass, appended into the reused scratch slice:
		// the stack lock is amortised per burst and the steady-state
		// loop allocates nothing.
		s.rxBatch = s.dev.AppendRxBurst(s.rxBatch[:0], s.cfg.RxQueue, 64)
		if len(s.rxBatch) == 0 {
			break
		}
		for i := range s.rxBatch {
			s.handleFrameLocked(s.rxBatch[i])
			// Ingest is copy-out (rcvBuf / pooled datagram payloads), so
			// the wire frame's pooled storage recycles immediately.
			s.rxBatch[i].Release()
			n++
		}
	}
	s.tickTimersLocked()
	return n
}

func (s *Stack) handleFrameLocked(f fabric.Frame) {
	s.stats.FramesIn++
	if len(f.Data) < ethHdrLen {
		return
	}
	f.Cost += s.model.UserNetStackNS + s.cfg.PerPacketExtra
	etherType := uint16(f.Data[12])<<8 | uint16(f.Data[13])
	body := f.Data[ethHdrLen:]
	switch etherType {
	case etherTypeARP:
		s.handleARPLocked(body)
	case etherTypeIPv4:
		s.handleIPv4Locked(body, f.Cost)
	}
}

// --- ARP ---

func (s *Stack) handleARPLocked(b []byte) {
	p, ok := parseARP(b)
	if !ok {
		return
	}
	// Learn the sender in all cases (gratuitous/learning behaviour), and
	// publish to the shared shard table when one is attached — sibling
	// shards never see ARP frames (the filter steers them here).
	s.arp[p.senderIP] = p.senderHW
	if s.cfg.Neighbors != nil {
		s.cfg.Neighbors.Learn(p.senderIP, p.senderHW)
	}
	s.flushARPPendingLocked(p.senderIP)
	switch p.op {
	case arpOpRequest:
		if p.targetIP != s.cfg.IP {
			return
		}
		s.stats.ARPReplies++
		reply := arpPacket{
			op:       arpOpReply,
			senderHW: s.dev.MAC(),
			senderIP: s.cfg.IP,
			targetHW: p.senderHW,
			targetIP: p.senderIP,
		}
		frame := appendEth(nil, p.senderHW, s.dev.MAC(), etherTypeARP)
		frame = reply.marshal(frame)
		s.dev.Tx(frame, 0)
	case arpOpReply:
		// Learning already done above.
	}
}

func (s *Stack) flushARPPendingLocked(ip IPv4Addr) {
	pend := s.arpPending[ip]
	if len(pend) == 0 {
		return
	}
	delete(s.arpPending, ip)
	mac := s.arp[ip]
	for _, p := range pend {
		frame := appendEth(nil, mac, s.dev.MAC(), p.etherType)
		frame = append(frame, p.payload...)
		s.dev.Tx(frame, p.cost)
	}
}

// sendIPv4Locked wraps payload in an IPv4+Ethernet frame to dstIP,
// resolving the MAC with ARP if needed.
func (s *Stack) sendIPv4Locked(dstIP IPv4Addr, proto uint8, l4 []byte, cost simclock.Lat) {
	s.ipID++
	h := ipv4Header{
		totalLen: uint16(ipv4HdrLen + len(l4)),
		id:       s.ipID,
		ttl:      64,
		proto:    proto,
		src:      s.cfg.IP,
		dst:      dstIP,
	}

	mac, ok := s.arp[dstIP]
	if !ok && s.cfg.Neighbors != nil {
		// Shared-table miss path: a sibling shard may have resolved it.
		if mac, ok = s.cfg.Neighbors.Lookup(dstIP); ok {
			s.arp[dstIP] = mac // cache privately; next send skips the table
		}
	}
	if ok {
		// Fast path: assemble Ethernet+IPv4+L4 directly into one pooled
		// frame buffer. Ownership of the buffer rides the Frame through
		// NIC, fabric, and the receiving stack.
		fb := s.pool.Get(ethHdrLen + ipv4HdrLen + len(l4))
		if fb == nil {
			// Frame quota exhausted: the packet is dropped here, exactly
			// where a real NIC driver fails a descriptor allocation. TCP's
			// retransmission machinery turns this into backpressure on the
			// over-quota tenant; nothing blocks, nothing panics.
			s.stats.TxQuotaDrops++
			return
		}
		frame := appendEth(fb.Bytes()[:0], mac, s.dev.MAC(), etherTypeIPv4)
		frame = h.marshal(frame)
		frame = append(frame, l4...)
		s.dev.TxFrame(fabric.Frame{Data: frame, Cost: cost, Buf: fb})
		return
	}
	// Slow path: queue a heap-backed copy behind ARP resolution.
	pkt := h.marshal(make([]byte, 0, ipv4HdrLen+len(l4)))
	pkt = append(pkt, l4...)
	s.arpPending[dstIP] = append(s.arpPending[dstIP], pendingPkt{etherTypeIPv4, pkt, cost})
	s.stats.ARPRequests++
	req := arpPacket{
		op:       arpOpRequest,
		senderHW: s.dev.MAC(),
		senderIP: s.cfg.IP,
		targetIP: dstIP,
	}
	frame := appendEth(nil, fabric.Broadcast, s.dev.MAC(), etherTypeARP)
	frame = req.marshal(frame)
	s.dev.Tx(frame, 0)
}

// --- IPv4 demux ---

func (s *Stack) handleIPv4Locked(b []byte, cost simclock.Lat) {
	h, body, ok := parseIPv4(b)
	if !ok {
		s.stats.BadChecksums++
		return
	}
	if h.dst != s.cfg.IP {
		return
	}
	switch h.proto {
	case protoTCP:
		s.handleTCPLocked(h, body, cost)
	case protoUDP:
		s.handleUDPLocked(h, body, cost)
	}
}

// --- UDP ---

// Datagram is one received UDP datagram. Payload may be backed by pooled
// storage; the consumer calls Free once done with it (Free is a no-op on
// heap-backed datagrams, so forgetting it degrades to garbage, never to
// corruption).
type Datagram struct {
	SrcIP   IPv4Addr
	SrcPort uint16
	Payload []byte
	Cost    simclock.Lat

	buf *fabric.FrameBuf
}

// Free recycles the datagram's pooled payload storage. Payload must not
// be touched afterwards. Safe to call on the zero Datagram and safe to
// call twice on the same value.
func (d *Datagram) Free() {
	if d.buf != nil {
		b := d.buf
		d.buf = nil
		d.Payload = nil
		b.Release()
	}
}

// UDPSock is a bound UDP socket.
type UDPSock struct {
	stack *Stack
	port  uint16
	rx    []Datagram
	max   int
}

// OpenUDP binds a UDP socket to port (0 picks an ephemeral port).
func (s *Stack) OpenUDP(port uint16) (*UDPSock, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		port = s.ephemeralLocked()
	}
	if _, used := s.udp[port]; used {
		return nil, fmt.Errorf("%w: udp %d", ErrPortInUse, port)
	}
	u := &UDPSock{stack: s, port: port, max: 1024}
	s.udp[port] = u
	return u, nil
}

func (s *Stack) ephemeralLocked() uint16 {
	for {
		s.nextPort++
		if s.nextPort < 49152 {
			s.nextPort = 49152
		}
		p := s.nextPort
		_, tcpUsed := s.listeners[p]
		_, udpUsed := s.udp[p]
		if !tcpUsed && !udpUsed {
			return p
		}
	}
}

func (s *Stack) handleUDPLocked(h ipv4Header, body []byte, cost simclock.Lat) {
	u, ok := parseUDP(body, h.src, h.dst)
	if !ok {
		s.stats.BadChecksums++
		return
	}
	sock, ok := s.udp[u.dstPort]
	if !ok {
		s.stats.NoListener++
		return
	}
	s.stats.UDPRcvd++
	if len(sock.rx) >= sock.max {
		return // receive queue overflow: drop, as UDP does
	}
	// Copy out of the wire frame into pooled storage: the frame recycles
	// as soon as Poll finishes the burst, the datagram lives until its
	// consumer calls Free.
	fb := s.pool.Get(len(u.payload))
	if fb == nil {
		// Quota exhausted: the datagram is lost, as UDP permits. The
		// tenant hoarding its own pool starves itself, not the wire.
		s.stats.RxQuotaDrops++
		return
	}
	copy(fb.Bytes(), u.payload)
	sock.rx = append(sock.rx, Datagram{
		SrcIP: h.src, SrcPort: u.srcPort,
		Payload: fb.Bytes(), Cost: cost, buf: fb,
	})
}

// Port returns the socket's bound port.
func (u *UDPSock) Port() uint16 { return u.port }

// SendTo transmits one datagram. cost is the virtual latency already
// accumulated by the caller (application compute, libOS work).
func (u *UDPSock) SendTo(ip IPv4Addr, port uint16, payload []byte, cost simclock.Lat) {
	s := u.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.UDPSent++
	d := udpDatagram{srcPort: u.port, dstPort: port, payload: payload}
	l4 := d.marshal(s.l4buf[:0], s.cfg.IP, ip)
	s.l4buf = l4 // keep the (possibly grown) scratch for reuse
	s.sendIPv4Locked(ip, protoUDP, l4, cost+s.model.UserNetStackNS+s.cfg.PerPacketExtra)
}

// Recv pops one received datagram without blocking.
func (u *UDPSock) Recv() (Datagram, bool) {
	s := u.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(u.rx) == 0 {
		return Datagram{}, false
	}
	d := u.rx[0]
	u.rx = u.rx[1:]
	return d, true
}

// Close unbinds the socket and recycles any queued datagrams.
func (u *UDPSock) Close() {
	s := u.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range u.rx {
		u.rx[i].Free()
	}
	u.rx = nil
	delete(s.udp, u.port)
}
