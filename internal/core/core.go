// Package core implements the Demikernel system-call interface of
// Figure 3 in the paper: control-path calls (Socket, Bind, Listen,
// Accept, Connect, Close, Open, Create, Queue, Merge, Filter, Sort, Map,
// QConnect) and data-path calls (Push, Pop, Wait, WaitAny, WaitAll,
// BlockingPush, BlockingPop) over queue descriptors.
//
// The package is device-independent. Device specifics live in library
// OSes (internal/libos/...), each of which implements the Transport
// interface for one class of kernel-bypass accelerator, exactly as each
// Demikernel libOS targets one accelerator type (§4.1). The public facade
// for applications is the root package demikernel, which re-exports this
// API.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/netstack"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// QD is a queue descriptor: what a file descriptor becomes when I/O is
// queues (§4.3: calls "which would previously return a file descriptor,
// now return a queue descriptor").
type QD int

// InvalidQD is returned by failing control-path calls.
const InvalidQD QD = -1

// Errors returned by the syscall layer.
var (
	ErrBadQD        = errors.New("demikernel: bad queue descriptor")
	ErrNotSupported = errors.New("demikernel: operation not supported by this libOS")
	ErrNotListening = errors.New("demikernel: not a listening queue")

	// ErrWaitTimeout is the sentinel for every Wait/WaitAny/WaitAll/
	// Accept/Connect deadline expiry. It is always wrapped with the
	// operation that timed out, so applications (and the chaos soak
	// tests) can distinguish "the peer is slow or gone" from a
	// transport-reported failure with errors.Is.
	ErrWaitTimeout = errors.New("demikernel: wait deadline exceeded")

	// ErrTimeout is the historical name of ErrWaitTimeout, kept so
	// errors.Is(err, ErrTimeout) continues to hold.
	ErrTimeout = ErrWaitTimeout

	// ErrPeerDead reports that the remote endpoint of a connection is
	// gone: its libOS crashed, its retransmit budget ran out, or it reset
	// the connection. The paper's §3 warning made concrete — when a
	// kernel-bypass application dies, its TCP state dies with it, and the
	// *peer* libOS is the only OS left to diagnose the death. Transports
	// wrap their own diagnosis (netstack.ErrMaxRetransmits, a TCP RST,
	// catmint's QP loss) with this sentinel so applications can drive
	// failover with a single errors.Is check.
	ErrPeerDead = errors.New("demikernel: peer is dead")

	// ErrLocalReset reports that the *local* libOS stack was torn down
	// underneath the operation (Node.Crash, controller reset). Every
	// qtoken pending at crash time completes with this error — nothing
	// hangs, nothing leaks; the OS role of cleaning up after a dead
	// process (§3, Figure 2) reproduced in userspace.
	ErrLocalReset = errors.New("demikernel: local stack reset")
)

// timeoutErr wraps ErrWaitTimeout with the operation that expired.
func timeoutErr(op string, d time.Duration) error {
	return fmt.Errorf("demikernel: %s exceeded %v: %w", op, d, ErrWaitTimeout)
}

// Addr names a network endpoint. TCP-style transports use IP:Port;
// RDMA-style transports address by MAC:Port. Both fields are carried so
// one application Addr works across libOSes (§4.1 portability).
type Addr struct {
	IP   netstack.IPv4Addr
	MAC  fabric.MAC
	Port uint16
}

// String formats the address.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Features describes which OS functionality a device class provides in
// hardware versus what the libOS must supply in software — the Table 1
// taxonomy, made machine-readable for the E2 experiment.
type Features struct {
	// KernelBypass is true for every kernel-bypass accelerator.
	KernelBypass bool
	// HWTransport: the device implements a reliable transport (RDMA).
	HWTransport bool
	// HWBufferMgmt: the device manages receive buffers itself.
	HWBufferMgmt bool
	// HWOffloads: the device can run filters/maps (FPGA/SoC class).
	HWOffloads bool
	// SoftwareSupplied lists the OS components this libOS had to
	// implement on the CPU to close the gap (§2).
	SoftwareSupplied []string
}

// Endpoint is a network queue endpoint provided by a Transport. It is a
// Demikernel I/O queue plus the POSIX-shaped control-path operations.
type Endpoint interface {
	queue.IoQueue
	Bind(addr Addr) error
	Listen() error
	// Accept returns a new endpoint for one pending connection, or
	// ok=false when none is pending.
	Accept() (Endpoint, bool, error)
	// Connect starts connecting; completion is observed via Connected.
	Connect(addr Addr) error
	Connected() bool
	// Err reports the endpoint's terminal transport failure, if any
	// (peer dead, retransmit budget exhausted, queue pair unrecoverable).
	// Nil while the endpoint is healthy. The syscall layer checks it so
	// control-path waits fail fast with the transport's own error
	// instead of spinning to the deadline.
	Err() error
	// LocalAddr reports the bound address.
	LocalAddr() Addr
}

// Transport is what each library OS implements for its accelerator.
type Transport interface {
	// Name identifies the libOS (catnap, catnip, catmint, catfish).
	Name() string
	// Features describes the hardware/software split (Table 1).
	Features() Features
	// Socket creates an unbound, stream-style network endpoint.
	Socket() (Endpoint, error)
	// SocketUDP creates an unbound datagram endpoint on transports with
	// a datagram path; others return ErrNotSupported.
	SocketUDP() (Endpoint, error)
	// Open opens a named file queue on storage transports.
	Open(path string) (queue.IoQueue, error)
	// AllocSGA allocates an n-byte single-segment SGA from
	// device-registered memory (§4.5: the libOS memory manager). The
	// fallback is plain heap memory.
	AllocSGA(n int) sga.SGA
	// Poll pumps the transport's data path once.
	Poll() int
}

// qdKind discriminates descriptor types.
type qdKind int

const (
	qdEndpoint qdKind = iota
	qdQueue           // plain or composed IoQueue (memory, file, filter...)
)

type qdesc struct {
	kind qdKind
	ep   Endpoint
	q    queue.IoQueue
}

// NeedsPumper is implemented by queues that can cheaply report whether a
// Pump would do anything. Poll consults it so steady-state idle ticks
// skip armed-but-quiet queues without taking their locks — the §3.1
// poll-cost optimisation: the poll loop's cost must not grow with the
// number of idle connections.
type NeedsPumper interface {
	NeedsPump() bool
}

// pollEntry caches the NeedsPumper type assertion alongside the queue so
// the per-tick loop performs zero interface assertions.
type pollEntry struct {
	q  queue.IoQueue
	np NeedsPumper // nil when the queue cannot pre-screen pumps
}

func (d *qdesc) ioq() queue.IoQueue {
	if d.kind == qdEndpoint {
		return d.ep
	}
	return d.q
}

// LibOS is one Demikernel library-OS instance: a Transport plus the
// queue-descriptor table, the qtoken completer, and the wait machinery.
// It is safe for concurrent use.
type LibOS struct {
	// tp is the active transport behind an atomic pointer: Poll reads
	// it lock-free on every tick, and SwapTransport (live libOS
	// switching) replaces it while operations are in flight. The cell
	// boxes the interface value because the concrete transport type
	// changes across a switch (catnap <-> catnip).
	tp        atomic.Pointer[transportCell]
	model     *simclock.CostModel
	completer *queue.Completer

	mu       sync.Mutex
	qds      map[QD]*qdesc
	next     QD
	forwards []*forward

	// Poll-list cache: Poll iterates pollList, a snapshot of every
	// pumpable queue, rebuilt only when the descriptor table changes
	// (qdGen != pollGen). Steady-state polling takes the mutex for a
	// two-word generation check instead of an O(qds) map walk + slice
	// build per tick.
	qdGen    uint64
	pollGen  uint64
	pollList []pollEntry

	// rings holds the attached SQ/CQ pairs (see uring.go); copy-on-write
	// behind an atomic pointer so the Poll hot path loads it lock-free.
	rings atomic.Pointer[[]*ringEntry]

	// WaitTimeout bounds Wait/WaitAny/WaitAll spinning. The default
	// (5s of wall time) exists so a lost completion fails loudly in
	// tests instead of hanging.
	WaitTimeout time.Duration
}

type forward struct {
	in, out queue.IoQueue
	stop    bool
}

// transportCell boxes the Transport interface for atomic publication.
type transportCell struct{ t Transport }

// New creates a libOS over the given transport, charging composed-queue
// costs against model.
func New(t Transport, model *simclock.CostModel) *LibOS {
	l := &LibOS{
		model:       model,
		completer:   queue.NewCompleter(),
		qds:         make(map[QD]*qdesc),
		next:        1,
		WaitTimeout: 5 * time.Second,
	}
	l.tp.Store(&transportCell{t: t})
	// Name the span table after the transport so traces from multiple
	// libOSes in one process are attributable.
	l.completer.Spans().SetName(t.Name())
	return l
}

// Transport returns the currently active transport.
func (l *LibOS) Transport() Transport { return l.tp.Load().t }

// Name returns the underlying libOS name.
func (l *LibOS) Name() string { return l.Transport().Name() }

// Features returns the transport's Table 1 feature description.
func (l *LibOS) Features() Features { return l.Transport().Features() }

// AllocSGA allocates from the libOS memory manager (§4.5).
func (l *LibOS) AllocSGA(n int) sga.SGA { return l.Transport().AllocSGA(n) }

// Completer exposes the token table (used by experiments and the
// blocking-wait API).
func (l *LibOS) Completer() *queue.Completer { return l.completer }

// Spans exposes the per-queue qtoken span table (disabled by default;
// enable it to collect issue→submit→complete→consume latency series).
func (l *LibOS) Spans() *telemetry.SpanTable { return l.completer.Spans() }

// RegisterTelemetry lifts the libOS's observable state into a telemetry
// registry: the completer counters under prefix.completer, and — when
// the transport itself knows how to register (all in-tree transports
// do) — the transport's device/stack counters under prefix.
func (l *LibOS) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	l.completer.RegisterTelemetry(r, prefix+".completer")
	l.registerRingTelemetry(r, prefix+".uring")
	if tr, ok := l.Transport().(interface {
		RegisterTelemetry(*telemetry.Registry, string)
	}); ok {
		tr.RegisterTelemetry(r, prefix)
	}
}

func (l *LibOS) insert(d *qdesc) QD {
	l.mu.Lock()
	defer l.mu.Unlock()
	qd := l.next
	l.next++
	l.qds[qd] = d
	l.qdGen++ // invalidate the Poll snapshot
	return qd
}

func (l *LibOS) get(qd QD) (*qdesc, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.qds[qd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadQD, qd)
	}
	return d, nil
}

// --- control path: network (Figure 3, top-left) ---

// Socket creates a network queue endpoint and returns its descriptor.
func (l *LibOS) Socket() (QD, error) {
	ep, err := l.Transport().Socket()
	if err != nil {
		return InvalidQD, err
	}
	return l.insert(&qdesc{kind: qdEndpoint, ep: ep}), nil
}

// AdoptEndpoint registers a transport endpoint constructed outside the
// ordinary Socket path (e.g. a sharded libOS dialing from a chosen
// source port so RSS lands the flow on a specific peer shard) and
// returns its queue descriptor.
func (l *LibOS) AdoptEndpoint(ep Endpoint) QD {
	return l.insert(&qdesc{kind: qdEndpoint, ep: ep})
}

// AdoptQueue registers an IoQueue constructed outside the ordinary
// Open/Queue paths (e.g. catfish's pushdown lookup face) and returns
// its queue descriptor. The queue joins the poll list like any other.
func (l *LibOS) AdoptQueue(q queue.IoQueue) QD {
	return l.insert(&qdesc{kind: qdQueue, q: q})
}

// EndpointOf returns the transport endpoint behind a socket queue
// descriptor, for transport-specific extensions (e.g. catmint's
// one-sided remote-memory operations).
func (l *LibOS) EndpointOf(qd QD) (Endpoint, error) {
	d, err := l.get(qd)
	if err != nil {
		return nil, err
	}
	if d.kind != qdEndpoint {
		return nil, ErrBadQD
	}
	return d.ep, nil
}

// SocketUDP creates a datagram queue endpoint. Datagrams are natural
// atomic units, so no stream framing is involved; each pushed SGA
// travels as one datagram.
func (l *LibOS) SocketUDP() (QD, error) {
	ep, err := l.Transport().SocketUDP()
	if err != nil {
		return InvalidQD, err
	}
	return l.insert(&qdesc{kind: qdEndpoint, ep: ep}), nil
}

// Bind binds a socket queue to a local address.
func (l *LibOS) Bind(qd QD, addr Addr) error {
	d, err := l.get(qd)
	if err != nil {
		return err
	}
	if d.kind != qdEndpoint {
		return ErrBadQD
	}
	return d.ep.Bind(addr)
}

// Listen marks a bound socket queue as accepting connections.
func (l *LibOS) Listen(qd QD) error {
	d, err := l.get(qd)
	if err != nil {
		return err
	}
	if d.kind != qdEndpoint {
		return ErrBadQD
	}
	return d.ep.Listen()
}

// Accept waits (control path, so blocking is acceptable) for one inbound
// connection and returns its queue descriptor.
func (l *LibOS) Accept(qd QD) (QD, error) {
	d, err := l.get(qd)
	if err != nil {
		return InvalidQD, err
	}
	if d.kind != qdEndpoint {
		return InvalidQD, ErrBadQD
	}
	deadline := time.Now().Add(l.WaitTimeout)
	for {
		ep, ok, err := d.ep.Accept()
		if err != nil {
			return InvalidQD, err
		}
		if ok {
			return l.insert(&qdesc{kind: qdEndpoint, ep: ep}), nil
		}
		if err := d.ep.Err(); err != nil {
			return InvalidQD, err
		}
		if time.Now().After(deadline) {
			return InvalidQD, timeoutErr("accept", l.WaitTimeout)
		}
		l.Poll()
		runtime.Gosched()
	}
}

// TryAccept is the non-blocking accept used by event loops.
func (l *LibOS) TryAccept(qd QD) (QD, bool, error) {
	d, err := l.get(qd)
	if err != nil {
		return InvalidQD, false, err
	}
	if d.kind != qdEndpoint {
		return InvalidQD, false, ErrBadQD
	}
	ep, ok, err := d.ep.Accept()
	if err != nil || !ok {
		return InvalidQD, false, err
	}
	return l.insert(&qdesc{kind: qdEndpoint, ep: ep}), true, nil
}

// Connect connects a socket queue to a remote address, polling the data
// path until the connection establishes (control path; may block).
func (l *LibOS) Connect(qd QD, addr Addr) error {
	d, err := l.get(qd)
	if err != nil {
		return err
	}
	if d.kind != qdEndpoint {
		return ErrBadQD
	}
	if err := d.ep.Connect(addr); err != nil {
		return err
	}
	deadline := time.Now().Add(l.WaitTimeout)
	for !d.ep.Connected() {
		if err := d.ep.Err(); err != nil {
			// The transport diagnosed the failure (SYN timeout, QP
			// error): report it instead of spinning to the deadline.
			return err
		}
		if time.Now().After(deadline) {
			return timeoutErr("connect", l.WaitTimeout)
		}
		l.Poll()
		runtime.Gosched()
	}
	return nil
}

// Close tears down a queue descriptor.
func (l *LibOS) Close(qd QD) error {
	l.mu.Lock()
	d, ok := l.qds[qd]
	if ok {
		delete(l.qds, qd)
		l.qdGen++ // invalidate the Poll snapshot
	}
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadQD, qd)
	}
	return d.ioq().Close()
}

// --- control path: files (Figure 3, bottom-left) ---

// Open opens a named file queue (storage transports only).
func (l *LibOS) Open(path string) (QD, error) {
	q, err := l.Transport().Open(path)
	if err != nil {
		return InvalidQD, err
	}
	return l.insert(&qdesc{kind: qdQueue, q: q}), nil
}

// Create creates (or opens) a named file queue; with the log-structured
// store underneath, creation and open are the same operation.
func (l *LibOS) Create(path string) (QD, error) { return l.Open(path) }

// --- control path: queue composition (Figure 3, top-right) ---

// Queue creates a plain memory queue.
func (l *LibOS) Queue() QD {
	return l.insert(&qdesc{kind: qdQueue, q: queue.NewMemQueue(0)})
}

// Merge returns a queue combining qd1 and qd2: pops drain either, pushes
// land in both.
func (l *LibOS) Merge(qd1, qd2 QD) (QD, error) {
	d1, err := l.get(qd1)
	if err != nil {
		return InvalidQD, err
	}
	d2, err := l.get(qd2)
	if err != nil {
		return InvalidQD, err
	}
	m := queue.NewMergeQueue(d1.ioq(), d2.ioq(), 0)
	return l.insert(&qdesc{kind: qdQueue, q: m}), nil
}

// Filter returns a queue exposing only elements of qd that match fn.
// The libOS lowers the filter onto the device when the transport supports
// it and otherwise runs it on the CPU (§4.3); lowering is the business of
// transport-specific helpers (see internal/offload).
func (l *LibOS) Filter(qd QD, fn queue.FilterFunc) (QD, error) {
	d, err := l.get(qd)
	if err != nil {
		return InvalidQD, err
	}
	f := queue.NewFilterQueue(d.ioq(), fn, l.model)
	return l.insert(&qdesc{kind: qdQueue, q: f}), nil
}

// Sort returns a queue that pops elements of qd in priority order.
func (l *LibOS) Sort(qd QD, less queue.LessFunc) (QD, error) {
	d, err := l.get(qd)
	if err != nil {
		return InvalidQD, err
	}
	s := queue.NewSortQueue(d.ioq(), less, 0)
	return l.insert(&qdesc{kind: qdQueue, q: s}), nil
}

// Map returns a queue applying fn to every element crossing qd.
func (l *LibOS) Map(qd QD, fn queue.MapFunc) (QD, error) {
	d, err := l.get(qd)
	if err != nil {
		return InvalidQD, err
	}
	m := queue.NewMapQueue(d.ioq(), fn, l.model)
	return l.insert(&qdesc{kind: qdQueue, q: m}), nil
}

// QConnect plumbs qdin's pops into pushes on qdout; the forwarding runs
// inside Poll. It is how pipelines of queues are stitched together.
func (l *LibOS) QConnect(qdin, qdout QD) error {
	din, err := l.get(qdin)
	if err != nil {
		return err
	}
	dout, err := l.get(qdout)
	if err != nil {
		return err
	}
	f := &forward{in: din.ioq(), out: dout.ioq()}
	l.mu.Lock()
	l.forwards = append(l.forwards, f)
	l.mu.Unlock()
	l.startForward(f)
	return nil
}

func (l *LibOS) startForward(f *forward) {
	f.in.Pop(func(c queue.Completion) {
		if c.Err != nil || f.stop {
			return
		}
		f.out.Push(c.SGA, c.Cost, func(queue.Completion) {})
		l.startForward(f)
	})
}

// --- data path (Figure 3, bottom) ---

// Push submits an SGA into a queue as one atomic element and returns a
// qtoken for its completion.
func (l *LibOS) Push(qd QD, s sga.SGA) (queue.QToken, error) {
	return l.PushCost(qd, s, 0)
}

// PushCost is Push carrying virtual application-compute cost already
// spent on the element (experiments use it to model the §3.2 2µs Redis
// request).
func (l *LibOS) PushCost(qd QD, s sga.SGA, cost simclock.Lat) (queue.QToken, error) {
	d, err := l.get(qd)
	if err != nil {
		return 0, err
	}
	qt, done := l.completer.NewTokenFor(int32(qd))
	d.ioq().Push(s, cost, done)
	l.completer.MarkSubmit(qt)
	return qt, nil
}

// Pop requests the next element of a queue and returns a qtoken.
func (l *LibOS) Pop(qd QD) (queue.QToken, error) {
	d, err := l.get(qd)
	if err != nil {
		return 0, err
	}
	qt, done := l.completer.NewTokenFor(int32(qd))
	d.ioq().Pop(done)
	l.completer.MarkSubmit(qt)
	return qt, nil
}

// Poll pumps the whole libOS data path once: submission rings,
// transport, composed queues, and qconnect forwarding.
func (l *LibOS) Poll() int {
	// Drain attached SQ rings first so ops submitted this tick reach
	// the transport before it is pumped (one-tick latency saved).
	n := l.drainRings()
	n += l.Transport().Poll()
	l.mu.Lock()
	if l.pollGen != l.qdGen {
		// Topology changed: rebuild into a *fresh* slice (a concurrent
		// Poll may still be iterating the previous snapshot outside the
		// lock, so the old backing array must not be reused). The
		// NeedsPumper assertion is resolved here, once per topology
		// change, not per tick.
		qs := make([]pollEntry, 0, len(l.qds))
		for _, d := range l.qds {
			q := d.ioq()
			np, _ := q.(NeedsPumper)
			qs = append(qs, pollEntry{q: q, np: np})
		}
		l.pollList = qs
		l.pollGen = l.qdGen
	}
	qs := l.pollList
	l.mu.Unlock()
	for _, e := range qs {
		if e.np != nil && !e.np.NeedsPump() {
			continue // armed but quiet: skip without touching its lock
		}
		n += e.q.Pump()
	}
	return n
}

// Background starts a goroutine that pumps Poll continuously, yielding
// the processor when idle, and returns a function that stops it. A real
// Demikernel deployment dedicates a polling thread per libOS in exactly
// this shape; tests, examples, and experiments use it so that both ends
// of a connection make progress.
func (l *LibOS) Background() (stop func()) {
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-done:
				return
			default:
			}
			if l.Poll() == 0 {
				time.Sleep(20 * time.Microsecond)
			} else {
				// On small GOMAXPROCS, yield so peer pollers and the
				// application goroutines interleave at poll granularity
				// instead of the scheduler's preemption interval.
				runtime.Gosched()
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}

// TryWait returns qt's completion if it has arrived (consuming the
// token), without polling.
func (l *LibOS) TryWait(qt queue.QToken) (queue.Completion, bool, error) {
	return l.completer.TryWait(qt)
}

// deadlineFor resolves the explicit-deadline-vs-config precedence for
// the Wait family: an explicit non-zero deadline wins; the zero
// time.Time means "no explicit deadline", falling back to the global
// WaitTimeout knob measured from now. The returned duration is only
// used to label the timeout error.
func (l *LibOS) deadlineFor(deadline time.Time) (time.Time, time.Duration) {
	if deadline.IsZero() {
		return time.Now().Add(l.WaitTimeout), l.WaitTimeout
	}
	return deadline, time.Until(deadline)
}

// Wait polls the data path until qt completes and returns its completion.
// Because "wait directly returns the data from the operation", a pop's
// SGA arrives here with no further call (§4.4). The wait is bounded by
// the libOS-wide WaitTimeout knob; use WaitDeadline for a per-call bound.
func (l *LibOS) Wait(qt queue.QToken) (queue.Completion, error) {
	return l.WaitDeadline(qt, time.Time{})
}

// WaitDeadline is Wait with an explicit deadline. A non-zero deadline
// takes precedence over the global WaitTimeout; the zero time falls back
// to it. Expiry is reported wrapped in ErrWaitTimeout, so existing
// errors.Is(err, ErrWaitTimeout) call sites need no change.
func (l *LibOS) WaitDeadline(qt queue.QToken, deadline time.Time) (queue.Completion, error) {
	dl, budget := l.deadlineFor(deadline)
	for {
		c, ok, err := l.completer.TryWait(qt)
		if err != nil {
			return queue.Completion{}, err
		}
		if ok {
			return c, nil
		}
		if time.Now().After(dl) {
			return queue.Completion{}, timeoutErr("wait", budget)
		}
		l.Poll()
		runtime.Gosched()
	}
}

// WaitAny polls until any of the tokens completes; it returns the index
// of the winner and its completion. It is the queue-native replacement
// for an epoll loop (§4.4). Bounded by WaitTimeout; see WaitAnyDeadline.
func (l *LibOS) WaitAny(qts []queue.QToken) (int, queue.Completion, error) {
	return l.WaitAnyDeadline(qts, time.Time{})
}

// WaitAnyDeadline is WaitAny with an explicit deadline (zero time falls
// back to the WaitTimeout knob; expiry wraps ErrWaitTimeout).
//
// The token slice is scanned exactly once, to subscribe an AnyWaiter;
// after that each poll iteration asks the waiter for a completed token
// in O(1) instead of re-probing all n tokens — with 1024 outstanding
// pops the old rescan dominated the wait loop (BenchmarkWaitAnyFanIn).
func (l *LibOS) WaitAnyDeadline(qts []queue.QToken, deadline time.Time) (int, queue.Completion, error) {
	dl, budget := l.deadlineFor(deadline)
	w := l.completer.NewAnyWaiter()
	idx := make(map[queue.QToken]int, len(qts))
	subscribed := 0
	unsubscribe := func() {
		for _, qt := range qts[:subscribed] {
			l.completer.UnsubscribeAny(w, qt)
		}
	}
	for i, qt := range qts {
		done, err := l.completer.SubscribeAny(w, qt)
		if err != nil {
			unsubscribe()
			return i, queue.Completion{}, err
		}
		if done {
			// Already complete: consume it now, preserving the old
			// first-in-scan-order preference.
			c, ok, err := l.completer.TryWait(qt)
			unsubscribe()
			if err != nil {
				return i, queue.Completion{}, err
			}
			if ok {
				return i, c, nil
			}
			return i, queue.Completion{}, queue.ErrUnknownToken
		}
		idx[qt] = i
		subscribed++
	}
	for {
		for {
			qt, ok := w.Take()
			if !ok {
				break
			}
			i, mine := idx[qt]
			if !mine {
				continue // stale ping from a recycled token number
			}
			c, ok, err := l.completer.TryWait(qt)
			if err != nil {
				unsubscribe()
				return i, queue.Completion{}, err
			}
			if ok {
				unsubscribe()
				return i, c, nil
			}
		}
		if time.Now().After(dl) {
			unsubscribe()
			return -1, queue.Completion{}, timeoutErr("wait-any", budget)
		}
		l.Poll()
		runtime.Gosched()
	}
}

// WaitAll polls until every token completes, returning completions in
// token order. Bounded by WaitTimeout; see WaitAllDeadline.
func (l *LibOS) WaitAll(qts []queue.QToken) ([]queue.Completion, error) {
	return l.WaitAllDeadline(qts, time.Time{})
}

// WaitAllDeadline is WaitAll with an explicit deadline (zero time falls
// back to the WaitTimeout knob; expiry wraps ErrWaitTimeout).
func (l *LibOS) WaitAllDeadline(qts []queue.QToken, deadline time.Time) ([]queue.Completion, error) {
	out := make([]queue.Completion, len(qts))
	donemask := make([]bool, len(qts))
	remaining := len(qts)
	dl, budget := l.deadlineFor(deadline)
	for remaining > 0 {
		progressed := false
		for i, qt := range qts {
			if donemask[i] {
				continue
			}
			c, ok, err := l.completer.TryWait(qt)
			if err != nil {
				return nil, err
			}
			if ok {
				out[i] = c
				donemask[i] = true
				remaining--
				progressed = true
			}
		}
		if remaining == 0 {
			break
		}
		if !progressed && time.Now().After(dl) {
			return nil, timeoutErr("wait-all", budget)
		}
		l.Poll()
		runtime.Gosched()
	}
	return out, nil
}

// WaitChan subscribes a blocking waiter to qt: the channel delivers the
// completion and wakes exactly this one waiter (§4.4). The caller must
// keep another thread pumping Poll, as a scheduler-integrated Demikernel
// deployment would.
func (l *LibOS) WaitChan(qt queue.QToken) (<-chan queue.Completion, error) {
	return l.completer.WaitChan(qt)
}

// BlockingPush is "identical to a push, followed by a wait on the
// returned qtoken" (Figure 3).
func (l *LibOS) BlockingPush(qd QD, s sga.SGA) (queue.Completion, error) {
	qt, err := l.Push(qd, s)
	if err != nil {
		return queue.Completion{}, err
	}
	return l.Wait(qt)
}

// BlockingPop is "identical to a pop, followed by a wait on the returned
// qtoken" (Figure 3).
func (l *LibOS) BlockingPop(qd QD) (queue.Completion, error) {
	qt, err := l.Pop(qd)
	if err != nil {
		return queue.Completion{}, err
	}
	return l.Wait(qt)
}
