// Package catfish is the storage library OS: it implements Demikernel
// file queues over the simulated SPDK NVMe device, using the
// accelerator-specific log-structured layout of §5.3 (package spdk's
// blob store) instead of a general-purpose UNIX file system.
//
// A file queue is an append-only record stream: push durably appends one
// scatter-gather array; pop returns the next unread one. Records keep
// their segmentation via the standard SGA framing, so "a scatter-gather
// array pushed into a Demikernel queue always pops out as a single
// element" holds across the storage path and across restarts.
package catfish

import (
	"sync"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// Transport is the catfish libOS transport.
type Transport struct {
	model *simclock.CostModel
	dev   *spdk.Device
	store *spdk.Store

	mu  sync.Mutex
	fqs []*fileQueue
}

// New opens (recovering if necessary) a catfish instance on dev.
func New(model *simclock.CostModel, dev *spdk.Device) (*Transport, error) {
	store, _, err := spdk.NewStore(dev)
	if err != nil {
		return nil, err
	}
	return &Transport{model: model, dev: dev, store: store}, nil
}

// Name implements core.Transport.
func (t *Transport) Name() string { return "catfish" }

// Features implements core.Transport.
func (t *Transport) Features() core.Features {
	return core.Features{
		KernelBypass: true,
		SoftwareSupplied: []string{
			"log-structured record layout", "naming", "sga framing",
		},
	}
}

// Device exposes the NVMe device (for stats).
func (t *Transport) Device() *spdk.Device { return t.dev }

// Store exposes the blob store (for recovery tests).
func (t *Transport) Store() *spdk.Store { return t.store }

// AllocSGA implements core.Transport.
func (t *Transport) AllocSGA(n int) sga.SGA { return sga.New(make([]byte, n)) }

// Socket implements core.Transport; catfish has no network path.
func (t *Transport) Socket() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// SocketUDP implements core.Transport; this libOS has no datagram path.
func (t *Transport) SocketUDP() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// Open implements core.Transport: it returns a file queue over the named
// record stream. Reads resume from the first record (a fresh cursor per
// open).
func (t *Transport) Open(path string) (queue.IoQueue, error) {
	f, _, err := t.store.Open(path)
	if err != nil {
		return nil, err
	}
	fq := &fileQueue{t: t, f: f}
	t.mu.Lock()
	t.fqs = append(t.fqs, fq)
	t.mu.Unlock()
	return fq, nil
}

// Poll implements core.Transport.
func (t *Transport) Poll() int {
	t.mu.Lock()
	fqs := append([]*fileQueue(nil), t.fqs...)
	t.mu.Unlock()
	n := 0
	for _, fq := range fqs {
		n += fq.Pump()
	}
	return n
}

// fileQueue adapts one blob file to the IoQueue interface.
type fileQueue struct {
	t *Transport
	f *spdk.File

	mu      sync.Mutex
	cursor  int
	waiters []queue.DoneFunc
	closed  bool
}

// Push implements queue.IoQueue: a durable append of the framed SGA.
func (q *fileQueue) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	q.mu.Lock()
	closed := q.closed
	q.mu.Unlock()
	if closed {
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	c, err := q.f.Append(s.Marshal())
	if err != nil {
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	done(queue.Completion{Kind: queue.OpPush, Cost: cost + c})
	q.Pump() // a waiter may be satisfiable now
}

// Pop implements queue.IoQueue: the next unread record, or a wait until
// one is appended.
func (q *fileQueue) Pop(done queue.DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	q.waiters = append(q.waiters, done)
	q.mu.Unlock()
	q.Pump()
}

// Pump implements queue.IoQueue: serve waiters from available records.
func (q *fileQueue) Pump() int {
	n := 0
	for {
		q.mu.Lock()
		if q.closed || len(q.waiters) == 0 || q.cursor >= q.f.NumRecords() {
			q.mu.Unlock()
			return n
		}
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		idx := q.cursor
		q.cursor++
		q.mu.Unlock()

		rec, cost, err := q.f.Read(idx)
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		s, _, err := sga.Unmarshal(rec)
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		w(queue.Completion{Kind: queue.OpPop, SGA: s, Cost: cost})
		n++
	}
}

// Close implements queue.IoQueue.
func (q *fileQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	return nil
}
