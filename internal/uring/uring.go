// Package uring implements the syscall-free submission path between an
// application thread and a libOS worker: one pair of lock-free SPSC
// rings (a submission queue the app produces into and the libOS drains,
// and a completion queue the libOS produces into and the app harvests),
// mirroring io_uring's SQ/CQ split and the paper's argument that the
// control plane should get out of the data path entirely. In steady
// state an operation crosses from app to libOS and back without a
// single call into the libOS, without touching the completer's token
// map, and without allocating: wait state lives in a free-listed slab
// of op states (index+generation handles) whose completion closures are
// bound once at construction.
//
// Concurrency contract. Each Pair has exactly one application thread
// (the SQ producer and CQ consumer — Submit/SubmitN/Harvest) and one
// libOS side. The libOS side is internally serialized by a mutex
// because completions can fire from whichever goroutine pumps the
// netstack, and a crash flush (Reset) must atomically drain the SQ and
// post error CQEs; the app side is lock-free.
//
// Overflow freedom. The CQ can never overflow: Submit reserves a CQ
// slot up front by capping outstanding operations (SQEs not yet
// drained + ops in flight + CQEs not yet harvested) at the ring
// capacity, and Harvest releases the reservation. The libOS therefore
// admits every drained SQE unconditionally; cq_overflow is a defensive
// counter that stays zero.
package uring

import (
	"sync"
	"sync/atomic"
	"time"

	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/shard"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// SQE is one submission-queue entry: a fixed-size description of a
// queue operation. The app fills Op, QD, Tag and (for pushes) SGA/Cost;
// Tag is an opaque user cookie returned verbatim on the matching CQE so
// the app can dispatch completions without any shared map.
type SQE struct {
	Op   queue.OpKind
	QD   int32
	Tag  uint64
	SGA  sga.SGA      // push payload; app-owned until successful completion
	Cost simclock.Lat // virtual latency the app accumulated before submitting

	issueNS int64 // wall stamp, set by Submit while spans are enabled
}

// CQE is one completion-queue entry. For pops SGA carries the received
// element and ownership transfers to the app (which must Free it); for
// failed or flushed pushes the submitted payload remains app-owned.
type CQE struct {
	Tag  uint64
	Kind queue.OpKind
	Err  error
	SGA  sga.SGA
	Cost simclock.Lat

	// Span attribution, carried through the ring so issue→consume spans
	// survive without the completer's token sidecar.
	qd                        int32
	issueNS, submitNS, doneNS int64
}

// opState is one slab slot: the wait state of one in-flight operation.
// Its DoneFunc is bound once at NewPair, so arming an op allocates
// nothing; gen increments on every release so a handle is an
// (index, generation) pair and stale completions are detectable.
type opState struct {
	p   *Pair
	idx uint32
	gen uint32

	armed             bool
	tag               uint64
	qd                int32
	issueNS, submitNS int64

	done queue.DoneFunc
}

// batchBuckets are the upper bounds of the drain batch-size histogram;
// the last bucket is unbounded.
var batchBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64, 128}

// Pair is one SQ/CQ ring pair between one app thread and one libOS.
type Pair struct {
	sq       *shard.Ring[SQE]
	cq       *shard.Ring[CQE]
	capacity int

	// outstanding counts reservations: ops submitted but not yet
	// harvested. Written only by the app thread; atomic so telemetry
	// and the libOS flush path may read it.
	outstanding atomic.Int64

	// reset, once non-nil, poisons the pair: Submit refuses, Harvest
	// rewrites every CQE to the reset error and frees its payload.
	reset atomic.Pointer[error]

	// mu serializes the libOS side: SQ drains, slab arm/release, CQ
	// pushes (completions fire from whichever goroutine pumps the
	// stack) and the crash flush.
	mu     sync.Mutex
	states []opState
	free   []uint32

	spans *telemetry.SpanTable

	// Counters (names mirror the uring.* registry entries).
	sqPosted    atomic.Int64
	sqDrained   atomic.Int64
	cqPosted    atomic.Int64
	cqHarvested atomic.Int64
	sqFullSpins atomic.Int64
	cqOverflow  atomic.Int64
	sqFlushed   atomic.Int64
	cqFlushed   atomic.Int64
	drainBatch  [len(batchBuckets) + 1]atomic.Int64
}

// NewPair returns a ring pair with the given capacity (rounded up to a
// power of two, minimum 2). Capacity bounds the number of outstanding
// operations; both rings and the op-state slab share it, which is what
// makes the completion queue overflow-free.
func NewPair(capacity int) *Pair {
	n := 2
	for n < capacity {
		n <<= 1
	}
	p := &Pair{
		sq:       shard.NewRing[SQE](n),
		cq:       shard.NewRing[CQE](n),
		capacity: n,
		states:   make([]opState, n),
		free:     make([]uint32, n),
	}
	for i := range p.states {
		st := &p.states[i]
		st.p = p
		st.idx = uint32(i)
		st.done = func(c queue.Completion) { p.complete(st, c) }
		p.free[i] = uint32(n - 1 - i)
	}
	return p
}

// Cap returns the pair's capacity (== max outstanding operations).
func (p *Pair) Cap() int { return p.capacity }

// Outstanding returns the number of reservations currently held:
// operations submitted and not yet harvested.
func (p *Pair) Outstanding() int { return int(p.outstanding.Load()) }

// ResetErr returns the error the pair was flushed with, or nil while
// the pair is live.
func (p *Pair) ResetErr() error {
	if e := p.reset.Load(); e != nil {
		return *e
	}
	return nil
}

// SetSpans attaches a span table; while it is enabled, operations are
// stamped at issue/submit/done/consume and recorded at harvest.
func (p *Pair) SetSpans(t *telemetry.SpanTable) { p.spans = t }

// ---------------------------------------------------------------------
// App side (one thread): Submit / SubmitN / Harvest.
// ---------------------------------------------------------------------

// Submit posts one SQE. It returns false when the pair has no free
// reservation (backpressure: harvest first) or has been reset.
func (p *Pair) Submit(e SQE) bool {
	if p.reset.Load() != nil {
		return false
	}
	if p.outstanding.Load() >= int64(p.capacity) {
		p.sqFullSpins.Add(1)
		return false
	}
	if p.spans != nil && p.spans.Enabled() {
		e.issueNS = time.Now().UnixNano()
	}
	if !p.sq.Push(e) { // unreachable while the reservation invariant holds
		p.sqFullSpins.Add(1)
		return false
	}
	p.outstanding.Add(1)
	p.sqPosted.Add(1)
	return true
}

// SubmitN posts a batch of SQEs with a single release store and returns
// how many were accepted (a prefix of es). It may stamp issue times
// into es.
func (p *Pair) SubmitN(es []SQE) int {
	if p.reset.Load() != nil {
		return 0
	}
	room := int64(p.capacity) - p.outstanding.Load()
	if room <= 0 {
		p.sqFullSpins.Add(1)
		return 0
	}
	n := len(es)
	if int64(n) > room {
		n = int(room)
	}
	if p.spans != nil && p.spans.Enabled() {
		now := time.Now().UnixNano()
		for i := 0; i < n; i++ {
			es[i].issueNS = now
		}
	}
	pushed := p.sq.PushN(es[:n])
	if pushed > 0 {
		p.outstanding.Add(int64(pushed))
		p.sqPosted.Add(int64(pushed))
	}
	if pushed < len(es) {
		p.sqFullSpins.Add(1)
	}
	return pushed
}

// Harvest pops up to len(dst) completions, releasing their
// reservations. After a reset every harvested CQE is rewritten to the
// reset error and any popped payload is freed, so pending operations
// resolve to exactly one typed-error completion each.
func (p *Pair) Harvest(dst []CQE) int {
	n := p.cq.PopN(dst)
	if n == 0 {
		return 0
	}
	p.outstanding.Add(int64(-n))
	p.cqHarvested.Add(int64(n))
	if rerr := p.reset.Load(); rerr != nil {
		for i := 0; i < n; i++ {
			dst[i].SGA.Free()
			dst[i].SGA = sga.SGA{}
			dst[i].Err = *rerr
		}
		return n
	}
	if p.spans != nil && p.spans.Enabled() {
		now := time.Now().UnixNano()
		for i := 0; i < n; i++ {
			c := &dst[i]
			if c.issueNS == 0 {
				continue // spans were enabled mid-flight
			}
			p.spans.Record(telemetry.SpanRecord{
				QD:        c.qd,
				Kind:      int(c.Kind),
				Err:       c.Err != nil,
				IssueNS:   c.issueNS,
				SubmitNS:  c.submitNS,
				DoneNS:    c.doneNS,
				ConsumeNS: now,
				VirtCost:  c.Cost,
			})
		}
	}
	return n
}

// ---------------------------------------------------------------------
// LibOS side: DrainSQ / Arm / (completions via bound DoneFuncs) / Reset.
// ---------------------------------------------------------------------

// DrainSQ pops up to len(dst) submissions in one burst. LibOS-side.
func (p *Pair) DrainSQ(dst []SQE) int {
	p.mu.Lock()
	n := p.sq.PopN(dst)
	p.mu.Unlock()
	if n > 0 {
		p.sqDrained.Add(int64(n))
		i := 0
		for i < len(batchBuckets) && int64(n) > batchBuckets[i] {
			i++
		}
		p.drainBatch[i].Add(1)
	}
	return n
}

// Arm acquires an op-state slot for one drained SQE and returns the
// pre-bound DoneFunc to hand to the IoQueue. The slab cannot run dry
// while the reservation invariant holds (slab size == capacity ≥
// outstanding ≥ armed ops), so exhaustion is a fatal invariant break.
// LibOS-side.
func (p *Pair) Arm(e SQE) queue.DoneFunc {
	var now int64
	if p.spans != nil && p.spans.Enabled() {
		now = time.Now().UnixNano()
	}
	p.mu.Lock()
	if len(p.free) == 0 {
		p.mu.Unlock()
		panic("uring: op-state slab exhausted (reservation invariant violated)")
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	st := &p.states[idx]
	st.armed = true
	st.tag = e.Tag
	st.qd = e.QD
	st.issueNS = e.issueNS
	st.submitNS = now
	p.mu.Unlock()
	return st.done
}

// complete is the target of every slab DoneFunc: it converts the
// operation's completion into a CQE, releases the slab slot, and posts
// to the CQ. A slot that is no longer armed (stale double-completion)
// is dropped and its payload freed.
func (p *Pair) complete(st *opState, c queue.Completion) {
	p.mu.Lock()
	if !st.armed {
		p.mu.Unlock()
		c.SGA.Free()
		return
	}
	st.armed = false
	st.gen++
	cqe := CQE{
		Tag:      st.tag,
		Kind:     c.Kind,
		Err:      c.Err,
		SGA:      c.SGA,
		Cost:     c.Cost,
		qd:       st.qd,
		issueNS:  st.issueNS,
		submitNS: st.submitNS,
	}
	if st.issueNS != 0 {
		cqe.doneNS = time.Now().UnixNano()
	}
	p.free = append(p.free, st.idx)
	if !p.cq.Push(cqe) { // unreachable: a reservation backs every CQE
		p.cqOverflow.Add(1)
		p.mu.Unlock()
		cqe.SGA.Free()
		return
	}
	p.cqPosted.Add(1)
	p.mu.Unlock()
}

// Reset flushes the pair after a crash: every posted-but-undrained SQE
// is converted into a CQE carrying err (its push payload stays
// app-owned, exactly as if Submit had been refused), already-posted
// CQEs are rewritten to err at harvest time, and the pair refuses new
// submissions. It returns how many SQEs were flushed and how many
// unharvested CQEs were already pending conversion. Idempotent.
func (p *Pair) Reset(err error) (flushedSQ, flushedCQ int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reset.Load() != nil {
		return 0, 0
	}
	flushedCQ = p.cq.Len()
	e := err
	p.reset.Store(&e)
	var buf [64]SQE
	for {
		n := p.sq.PopN(buf[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			cqe := CQE{Tag: buf[i].Tag, Kind: buf[i].Op, Err: err, qd: buf[i].QD}
			if !p.cq.Push(cqe) { // unreachable: flushing moves a reservation SQ→CQ
				p.cqOverflow.Add(1)
			}
			buf[i] = SQE{}
		}
		flushedSQ += n
	}
	p.sqFlushed.Add(int64(flushedSQ))
	p.cqFlushed.Add(int64(flushedCQ))
	return flushedSQ, flushedCQ
}

// ---------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------

// RegisterTelemetry publishes the pair's counters under prefix
// (conventionally "uring" or "shard.N.uring"):
//
//	<p>.sq_posted / sq_drained / cq_posted / cq_harvested
//	<p>.sq_full_spins / cq_overflow / sq_flushed / cq_flushed
//	<p>.sq_occupancy / cq_occupancy / outstanding   (gauges)
//	<p>.drain_batch.le_N / .over                    (batch-size histogram)
func (p *Pair) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".sq_posted", p.sqPosted.Load)
	r.RegisterFunc(prefix+".sq_drained", p.sqDrained.Load)
	r.RegisterFunc(prefix+".cq_posted", p.cqPosted.Load)
	r.RegisterFunc(prefix+".cq_harvested", p.cqHarvested.Load)
	r.RegisterFunc(prefix+".sq_full_spins", p.sqFullSpins.Load)
	r.RegisterFunc(prefix+".cq_overflow", p.cqOverflow.Load)
	r.RegisterFunc(prefix+".sq_flushed", p.sqFlushed.Load)
	r.RegisterFunc(prefix+".cq_flushed", p.cqFlushed.Load)
	r.RegisterFunc(prefix+".sq_occupancy", func() int64 { return int64(p.sq.Len()) })
	r.RegisterFunc(prefix+".cq_occupancy", func() int64 { return int64(p.cq.Len()) })
	r.RegisterFunc(prefix+".outstanding", p.outstanding.Load)
	for i := range p.drainBatch {
		name := prefix + ".drain_batch.over"
		if i < len(batchBuckets) {
			name = prefix + ".drain_batch.le_" + itoa(batchBuckets[i])
		}
		r.RegisterFunc(name, p.drainBatch[i].Load)
	}
}

// SQLen and CQLen report current ring occupancy (demi-stat's
// ring-occupancy column).
func (p *Pair) SQLen() int { return p.sq.Len() }

// CQLen reports the completion-queue occupancy.
func (p *Pair) CQLen() int { return p.cq.Len() }

// Counters is a point-in-time snapshot of one pair's counters, for
// aggregation surfaces (core sums them across attached pairs at
// registry read time, so rings attached after telemetry registration
// are still counted).
type Counters struct {
	SQPosted, SQDrained, CQPosted, CQHarvested    int64
	SQFullSpins, CQOverflow, SQFlushed, CQFlushed int64
	SQOccupancy, CQOccupancy, Outstanding         int64
	DrainBatch                                    [len(batchBuckets) + 1]int64
}

// CountersSnapshot returns the pair's counter values.
func (p *Pair) CountersSnapshot() (c Counters) {
	c.SQOccupancy = int64(p.sq.Len())
	c.CQOccupancy = int64(p.cq.Len())
	c.Outstanding = p.outstanding.Load()
	c.SQPosted = p.sqPosted.Load()
	c.SQDrained = p.sqDrained.Load()
	c.CQPosted = p.cqPosted.Load()
	c.CQHarvested = p.cqHarvested.Load()
	c.SQFullSpins = p.sqFullSpins.Load()
	c.CQOverflow = p.cqOverflow.Load()
	c.SQFlushed = p.sqFlushed.Load()
	c.CQFlushed = p.cqFlushed.Load()
	for i := range p.drainBatch {
		c.DrainBatch[i] = p.drainBatch[i].Load()
	}
	return c
}

// BatchBucketNames returns the histogram bucket labels in index order
// ("le_1" ... "le_128", "over"), matching Counters.DrainBatch.
func BatchBucketNames() []string {
	out := make([]string, 0, len(batchBuckets)+1)
	for _, b := range batchBuckets {
		out = append(out, "le_"+itoa(b))
	}
	return append(out, "over")
}

// itoa renders a small non-negative int64 without fmt (keeps the
// telemetry path dependency-light).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
