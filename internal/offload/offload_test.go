package offload

import (
	"fmt"
	"math/rand"
	"testing"

	"demikernel/internal/fabric"
	"demikernel/internal/nic"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

var (
	macA = fabric.MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = fabric.MAC{0x02, 0, 0, 0, 0, 0xB}
)

func TestInstallDrop(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 1)
	a := nic.New(&model, sw, nic.Config{MAC: macA})
	b := nic.New(&model, sw, nic.Config{MAC: macB})

	spec := FilterSpec{
		Name:  "starts-with-K",
		Frame: func(f []byte) bool { return len(f) > 14 && f[14] == 'K' },
	}
	InstallDrop(b, spec)

	send := func(payload string) {
		frame := append(append(append([]byte{}, macB[:]...), macA[:]...), 0x08, 0x00)
		a.Tx(append(frame, payload...), 0)
	}
	send("Keep")
	send("drop")
	send("Keep2")
	got := b.RxBurst(0, 10)
	if len(got) != 2 {
		t.Fatalf("frames = %d, want 2", len(got))
	}
	if b.Stats().FilterDrops != 1 {
		t.Fatalf("FilterDrops = %d", b.Stats().FilterDrops)
	}
}

func TestCPUFilterAgreesWithSpec(t *testing.T) {
	model := simclock.Datacenter2019()
	spec := SGAKeyFilter([]byte("hot:"))
	inner := queue.NewMemQueue(0)
	f := CPUFilter(inner, spec, &model)
	for _, p := range []string{"hot:1", "cold:1", "hot:2"} {
		inner.Push(sga.New([]byte(p)), 0, func(queue.Completion) {})
	}
	var got []string
	for i := 0; i < 2; i++ {
		done := make(chan queue.Completion, 1)
		f.Pop(func(c queue.Completion) { done <- c })
		c := <-done
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		got = append(got, string(c.SGA.Bytes()))
	}
	if got[0] != "hot:1" || got[1] != "hot:2" {
		t.Fatalf("got %v", got)
	}
}

func TestKeySteeringStable(t *testing.T) {
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 2)
	a := nic.New(&model, sw, nic.Config{MAC: macA})
	b := nic.New(&model, sw, nic.Config{MAC: macB, RxQueues: 4})

	keyOf := func(f []byte) ([]byte, bool) {
		if len(f) < 20 {
			return nil, false
		}
		return f[14:20], true // first 6 payload bytes are the key
	}
	KeySteering(b, 4, keyOf)

	send := func(key string) {
		frame := append(append(append([]byte{}, macB[:]...), macA[:]...), 0x08, 0x00)
		a.Tx(append(frame, key...), 0)
	}
	// Every frame for a key lands on QueueForKey(key).
	keys := []string{"key-01", "key-02", "key-03", "key-04"}
	for rep := 0; rep < 5; rep++ {
		for _, k := range keys {
			send(k)
		}
	}
	for _, k := range keys {
		q := QueueForKey([]byte(k), 4)
		got := b.RxBurst(q, 100)
		if len(got) != 5 {
			t.Fatalf("key %q: queue %d got %d frames, want 5", k, q, len(got))
		}
		for _, f := range got {
			if string(f.Data[14:20]) != k {
				t.Fatalf("foreign frame on queue %d: %q", q, f.Data[14:20])
			}
		}
	}
}

func TestCacheSimSteeringBeatsSpray(t *testing.T) {
	// The §4.3 cache claim, in the small: key-affine placement yields a
	// higher hit ratio than random spraying.
	const nCores, capacity, nKeys, nAccesses = 4, 64, 128, 20000
	r := rand.New(rand.NewSource(7))

	steered := NewCacheSim(nCores, capacity)
	sprayed := NewCacheSim(nCores, capacity)
	for i := 0; i < nAccesses; i++ {
		key := fmt.Sprintf("key-%03d", r.Intn(nKeys))
		steered.Access(QueueForKey([]byte(key), nCores), key)
		sprayed.Access(r.Intn(nCores), key)
	}
	if steered.HitRatio() <= sprayed.HitRatio() {
		t.Fatalf("steering (%.3f) should beat spraying (%.3f)",
			steered.HitRatio(), sprayed.HitRatio())
	}
	if steered.Hits()+steered.Misses() != nAccesses {
		t.Fatal("accounting broken")
	}
}

func TestLRUEviction(t *testing.T) {
	l := newLRU(2)
	if l.touch("a") {
		t.Fatal("first touch hit")
	}
	l.touch("b")
	if !l.touch("a") {
		t.Fatal("a evicted too early")
	}
	l.touch("c") // evicts b (LRU)
	if l.touch("b") {
		t.Fatal("b should have been evicted")
	}
	if !l.touch("c") {
		t.Fatal("c missing")
	}
}

func TestCacheSimEmpty(t *testing.T) {
	cs := NewCacheSim(2, 8)
	if cs.HitRatio() != 0 {
		t.Fatal("empty sim should report 0")
	}
}
