// Command demi-echo measures echo round-trip latency across libOS
// flavours and message sizes — the command-line version of experiment E1.
//
// Usage:
//
//	demi-echo [-libos catnip|catnap|catmint|all] [-n N] [-sizes 64,1024,4096]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	demi "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/metrics"
	"demikernel/internal/telemetry"
)

func main() {
	libos := flag.String("libos", "all", "library OS: catnip, catnap, catmint, or all")
	n := flag.Int("n", 50, "round trips per point")
	sizesArg := flag.String("sizes", "64,1024,4096,16384", "comma-separated message sizes")
	seed := flag.Int64("seed", 1, "cluster seed")
	stats := flag.Bool("stats", false, "print per-layer telemetry counters and qtoken span tables per point")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "demi-echo: bad size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}
	flavors := []string{*libos}
	if *libos == "all" {
		flavors = []string{"catnap", "catnip", "catmint"}
	}

	tbl := metrics.NewTable("echo round-trip virtual latency", "libOS", "msg bytes", "p50", "p99")
	for _, flavor := range flavors {
		for _, size := range sizes {
			h, err := measure(flavor, size, *n, *seed, *stats)
			if err != nil {
				fmt.Fprintf(os.Stderr, "demi-echo: %s/%dB: %v\n", flavor, size, err)
				os.Exit(1)
			}
			tbl.AddRow(flavor, size, h.Percentile(50), h.Percentile(99))
		}
	}
	fmt.Println(tbl.String())
}

func measure(flavor string, size, n int, seed int64, stats bool) (*metrics.Histogram, error) {
	cluster := demi.NewCluster(seed)
	mk := func(host byte) (*demi.Node, error) {
		switch flavor {
		case "catnip":
			return cluster.MustSpawn(demi.Catnip, demi.WithHost(host)), nil
		case "catnap":
			return cluster.MustSpawn(demi.Catnap, demi.WithHost(host)), nil
		case "catmint":
			return cluster.MustSpawn(demi.Catmint, demi.WithHost(host)), nil
		default:
			return nil, fmt.Errorf("unknown libOS %q", flavor)
		}
	}
	srvNode, err := mk(1)
	if err != nil {
		return nil, err
	}
	cliNode, err := mk(2)
	if err != nil {
		return nil, err
	}
	server := echo.NewServer(srvNode.LibOS)
	server.AppCost = cluster.Model.AppRequestNS
	if err := server.Listen(7); err != nil {
		return nil, err
	}
	defer srvNode.Background()()
	defer cliNode.Background()()
	stop := make(chan struct{})
	defer close(stop)
	go server.Run(stop)

	client := echo.NewClient(cliNode.LibOS)
	if err := client.Connect(cluster.AddrOf(srvNode, 7)); err != nil {
		return nil, err
	}

	var reg *telemetry.Registry
	var before telemetry.Snapshot
	if stats {
		reg = telemetry.NewRegistry()
		cluster.Switch.RegisterTelemetry(reg, "fabric")
		srvNode.RegisterTelemetry(reg, "server")
		cliNode.RegisterTelemetry(reg, "client")
		srvNode.Spans().SetName(flavor + " server")
		cliNode.Spans().SetName(flavor + " client")
		srvNode.Spans().Enable()
		cliNode.Spans().Enable()
		before = reg.Snapshot()
	}

	payload := make([]byte, size)
	var h metrics.Histogram
	for i := 0; i < n; i++ {
		cost, err := client.RTT(payload, cluster.Model.AppRequestNS)
		if err != nil {
			return nil, err
		}
		h.Record(cost)
	}

	if stats {
		fmt.Printf("-- %s / %dB: per-layer counters (delta) --\n", flavor, size)
		fmt.Print(reg.Snapshot().Diff(before).NonZero().String())
		fmt.Println(cliNode.Spans().Table().String())
		fmt.Println(srvNode.Spans().Table().String())
	}
	return &h, nil
}
