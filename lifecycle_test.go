package demikernel

// Lifecycle tests: crash and restart of live stacks, observed from the
// surviving side. The paper's §3 argument is that kernel bypass removes
// the OS from the death notification business — no FIN, no RST, no
// cleanup on behalf of the corpse. These tests require the replacements
// this repo builds instead: typed errors (never hangs) at the peer,
// LibrettOS-style listener re-binding at the reborn node, client-side
// redial-and-replay, and frame conservation across the incarnation
// boundary.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/apps/kv"
	"demikernel/internal/chaos"
	"demikernel/internal/fabric"
)

// TestCrashRestartMidConnection kills a server with a connection
// established and operations pending on both sides. The client must see
// only typed errors; after Restart the original listening QD must accept
// a fresh dial and carry data.
func TestCrashRestartMidConnection(t *testing.T) {
	c := NewCluster(61)
	srvNode := c.MustSpawn(Catnip, WithHost(1))
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{
		Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4,
	}))
	cliNode.WaitTimeout = 200 * time.Millisecond
	cqd, lqd, sqd, cleanup := chaosConnect(t, c, cliNode, srvNode, 7070)
	defer cleanup()

	// Prove the connection is live.
	if _, err := cliNode.BlockingPush(cqd, NewSGA([]byte("ping"))); err != nil {
		t.Fatal(err)
	}
	if comp, err := srvNode.BlockingPop(sqd); err != nil || comp.Err != nil {
		t.Fatalf("pre-crash pop: %v %v", err, comp.Err)
	}

	// Arm a pop on each side, then kill the server.
	cqt, err := cliNode.Pop(cqd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvNode.Pop(sqd); err != nil {
		t.Fatal(err)
	}
	aborted, err := srvNode.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if aborted == 0 {
		t.Fatal("crash aborted nothing despite a pending server pop")
	}

	// The client pushes into the void: its retransmission budget is the
	// only death detector left, and it must expire with a typed error.
	if _, err := cliNode.Push(cqd, NewSGA([]byte("lost"))); err != nil {
		t.Fatal(err)
	}
	comp, err := cliNode.Wait(cqt)
	switch {
	case err != nil && !typedErr(err):
		t.Fatalf("client wait failed with untyped error: %v", err)
	case err == nil && comp.Err != nil && !typedErr(comp.Err):
		t.Fatalf("client pop completed with untyped error: %v", comp.Err)
	case err == nil && comp.Err == nil:
		t.Fatal("client pop succeeded against a dead server")
	}

	// Rebirth: same MAC, same IP, same listening QD.
	if err := srvNode.Restart(); err != nil {
		t.Fatal(err)
	}
	cqd2, err := cliNode.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cliNode.Connect(cqd2, c.AddrOf(srvNode, 7070)); err != nil {
		t.Fatalf("redial after restart: %v", err)
	}
	sqd2, err := srvNode.Accept(lqd)
	if err != nil {
		t.Fatalf("pre-crash listener refused a post-restart dial: %v", err)
	}
	if _, err := cliNode.BlockingPush(cqd2, NewSGA([]byte("again"))); err != nil {
		t.Fatal(err)
	}
	comp, err = srvNode.BlockingPop(sqd2)
	if err != nil || comp.Err != nil {
		t.Fatalf("post-restart pop: %v %v", err, comp.Err)
	}
	if !bytes.Equal(comp.SGA.Bytes(), []byte("again")) {
		t.Fatalf("post-restart payload = %q", comp.SGA.Bytes())
	}
}

// TestKVFailoverAcrossCrash drives the single-connection KV client
// through a server death: with failover armed, the operation in flight
// when the server dies must be transparently replayed onto the reborn
// server — the caller never sees the crash.
func TestKVFailoverAcrossCrash(t *testing.T) {
	c := NewCluster(62)
	srvNode := c.MustSpawn(Catnip, WithHost(1))
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{
		Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4,
	}))
	cliNode.WaitTimeout = 200 * time.Millisecond

	srv := kv.NewServer(srvNode.LibOS, &c.Model)
	if err := srv.Listen(6379); err != nil {
		t.Fatal(err)
	}
	defer srvNode.Background()()
	defer cliNode.Background()()
	stop := make(chan struct{})
	defer close(stop)
	go srv.Run(stop)

	cli := kv.NewClient(cliNode.LibOS)
	pol := failover.DefaultPolicy()
	pol.MaxAttempts = 60
	cli.EnableFailover(pol)
	if err := cli.Connect(c.AddrOf(srvNode, 6379)); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	if _, err := srvNode.Crash(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(15 * time.Millisecond)
		if err := srvNode.Restart(); err != nil {
			t.Error(err)
		}
	}()

	// This Set spans the outage: detect, back off, redial, replay.
	if _, err := cli.Set("k", []byte("v2")); err != nil {
		t.Fatalf("failover did not absorb the crash: %v", err)
	}
	recon, replays := cli.FailoverStats()
	if recon == 0 || replays == 0 {
		t.Fatalf("FailoverStats = %d, %d; the crash should have forced both", recon, replays)
	}
	got, _, found, err := cli.Get("k")
	if err != nil || !found || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("post-failover Get = %q, %v, %v", got, found, err)
	}
}

// TestChaosShardedKVCrashRestart is the full gauntlet the issue asks
// for: loss, then an asymmetric partition, then a crash of the node
// owning all four KV shards, then restart and heal — against a sharded
// KV server with a failover-armed RSS-aligned client. Requirements: no
// untyped error ever surfaces, the client fully recovers, every
// successful read returns the value written, and the frame-conservation
// laws (including the crash-time RxFlushed bucket) hold at the end.
func TestChaosShardedKVCrashRestart(t *testing.T) {
	const shards = 4
	const port = 6380
	c := NewCluster(45)
	srvNode := c.MustSpawn(Catnip, WithHost(1), WithShards(shards)).Sharded
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{
		Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4,
	}))
	cliNode.WaitTimeout = 250 * time.Millisecond

	server := kv.NewShardedServer(srvNode.Libs, &c.Model, srvNode.Mesh())
	if err := server.Listen(port); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	var stopSrvOnce sync.Once
	stopServer := func() { stopSrvOnce.Do(func() { close(stop); wg.Wait() }) }
	defer stopServer()
	stopCliBg := cliNode.Background()
	var stopCliOnce sync.Once
	stopClient := func() { stopCliOnce.Do(stopCliBg) }
	defer stopClient()

	// RSS-aligned dial; the redial flavor rotates the source-port seed
	// by attempt so a replacement flow never collides with its corpse.
	cli, err := kv.NewShardedClient(cliNode.LibOS, shards, func(i int) (QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, i, uint16(4000*i+11))
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := failover.DefaultPolicy()
	pol.MaxAttempts = 80
	pol.Max = 40 * time.Millisecond
	cli.EnableFailover(pol, func(shard, attempt int) (QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, shard, uint16(4000*shard+11+attempt*131))
	})

	// The schedule: loss, one-way partition (client→server dies while
	// server→client flows — the gray failure), whole-node crash, rebirth.
	eng := chaos.New(45).
		ImpairAll(0, c.Switch, fabric.Impairments{LossRate: 0.03}).
		ImpairAll(20*time.Millisecond, c.Switch, fabric.Impairments{}).
		AsymmetricPartition(25*time.Millisecond, 15*time.Millisecond, c.Switch,
			cliNode.FabricPort(), srvNode.Set.Device().PortID()).
		NodeCrashRestart(55*time.Millisecond, 20*time.Millisecond, "kv", srvNode)
	// The engine runs on its own goroutine: the workload loop below can
	// block inside failover backoff, and the restart event must fire on
	// schedule regardless.
	engDone := make(chan struct{})
	go func() {
		eng.Run(100*time.Millisecond, time.Millisecond)
		close(engDone)
	}()
	done := func() bool {
		select {
		case <-engDone:
			return true
		default:
			return false
		}
	}

	expected := make(map[string][]byte)
	var successes, failures, postHealOK int
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; postHealOK < 20; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no recovery: %d successes, %d typed failures, %d post-heal",
				successes, failures, postHealOK)
		}
		key := fmt.Sprintf("cr-k%02d", i%16)
		val := bytes.Repeat([]byte{byte(i)}, 32+i%97)
		if _, err := cli.Set(key, val); err != nil {
			if !typedErr(err) {
				t.Fatalf("set %d failed with untyped error: %v", i, err)
			}
			failures++
			continue
		}
		expected[key] = val
		got, _, found, err := cli.Get(key)
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("get %d failed with untyped error: %v", i, err)
			}
			failures++
			continue
		}
		if !found || !bytes.Equal(got, expected[key]) {
			t.Fatalf("iteration %d: corrupted response for %q: got %d bytes, want %d",
				i, key, len(got), len(expected[key]))
		}
		successes++
		if done() {
			postHealOK++
		}
	}

	// The schedule must have fired completely and in order.
	evs := eng.FiredEvents()
	if len(evs) != 6 {
		t.Fatalf("schedule fired %d/6 events: %v", len(evs), eng.Fired())
	}
	for _, ev := range evs {
		if ev.FiredAt < ev.At {
			t.Fatalf("event %q fired before its offset: %+v", ev.Name, ev)
		}
	}
	if evs[4].Name != "node-crash(kv)" || evs[5].Name != "node-restart(kv)" {
		t.Fatalf("lifecycle events missing or misordered: %v", eng.Fired())
	}

	// The faults must have bitten on the wire and in the client stack.
	st := c.Switch.Stats()
	if st.InjectedLoss == 0 {
		t.Fatal("no frames were lost despite LossRate")
	}
	if st.AsymDrops == 0 {
		t.Fatal("the one-way partition never dropped a frame")
	}
	// (LinkDownDrops is not asserted: whether any frame hits the downed
	// link depends on where the client's backoff sleeps fall inside the
	// 20ms crash window — the law below still accounts for the bucket.)
	recon, replays := cli.FailoverStats()
	if recon == 0 || replays == 0 {
		t.Fatalf("FailoverStats = %d, %d; the crash should have forced redials and replays", recon, replays)
	}
	if crashes, restarts := srvNode.Set.Shard(0).Lifetimes(); crashes != 1 || restarts != 1 {
		t.Fatalf("Lifetimes = %d, %d; want 1, 1", crashes, restarts)
	}
	if srvNode.Crashed() {
		t.Fatal("server still reports crashed after the schedule completed")
	}

	// The reborn node must not be shadowed by a stale neighbor entry.
	if gen := srvNode.Set.Neighbors().Generation(); gen == 0 {
		t.Fatal("restart never generation-invalidated the shared neighbor table")
	}

	// Quiesce, then read the conservation laws.
	c.Switch.SetImpairments(fabric.Impairments{})
	c.Switch.Flush()
	qdeadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(qdeadline) {
		c.Poll()
		c.Switch.Flush()
		time.Sleep(time.Millisecond)
	}
	stopServer()
	stopClient()

	// Law 1 — the wire loses nothing silently.
	sw := c.Switch
	fs := sw.Stats()
	var sumTx int64
	for id := 0; id < sw.NumPorts(); id++ {
		sumTx += sw.PortStats(id).TxFrames
	}
	if lhs, rhs := sumTx+fs.InjectedDup, fs.Delivered+fs.InjectedLoss+fs.LinkDownDrops+fs.DroppedRxFull+fs.AsymDrops; lhs != rhs {
		t.Fatalf("fabric conservation violated: tx+dup=%d != delivered+loss+linkdown+rxfull+asym=%d", lhs, rhs)
	}

	// Law 2 — every frame delivered to the shared NIC port is accounted.
	dev := srvNode.Set.Device()
	dev.QueueDepth(0) // force a wire drain so delivered frames ring first
	ds := dev.Stats()
	ps := sw.PortStats(dev.PortID())
	if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops {
		t.Fatalf("nic conservation violated: delivered=%d != rx=%d+dropped=%d+filtered=%d",
			ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops)
	}

	// Law 3 — across the incarnation boundary: every frame the NIC
	// received is in some incarnation's FramesIn, still in a ring, or in
	// the crash-time RxFlushed bucket.
	srvNode.Poll() // ingest anything the forced drain just ringed
	ds = dev.Stats()
	var occ int64
	for q := 0; q < dev.NumRxQueues(); q++ {
		occ += int64(dev.RxOccupancy(q))
	}
	var framesIn int64
	for i := 0; i < srvNode.Size(); i++ {
		framesIn += srvNode.Set.Shard(i).StackStats().FramesIn
	}
	if ds.RxFrames != framesIn+occ+ds.RxFlushed {
		t.Fatalf("stack conservation violated across crash: nic rx=%d != sum frames_in=%d + rings=%d + flushed=%d",
			ds.RxFrames, framesIn, occ, ds.RxFlushed)
	}
}
