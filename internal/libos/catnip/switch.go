// Live libOS switching, catnip side: a transport can be constructed
// over an already-running netstack (promotion from the kernel path
// adopts the kernel's stack object wholesale — same TCP state, same
// device, only the per-packet cost profile changes), and endpoints can
// be exported to / adopted from the transport-neutral core.PortState.
package catnip

import (
	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/membuf"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// NewOnStack builds a catnip transport that drives an existing stack
// on an existing device instead of constructing fresh ones. The stack
// keeps every established connection, listener, and timer it had; the
// caller is responsible for flipping its per-packet cost profile
// (netstack.SetPerPacketExtra) to match the bypass path.
func NewOnStack(model *simclock.CostModel, dev *nic.Device, cfg Config, stack *netstack.Stack) *Transport {
	pool := fabric.DefaultFramePool
	if cfg.PoolFactory != nil {
		pool = cfg.PoolFactory()
	}
	var opts []membuf.Option
	if cfg.MemCapacity > 0 {
		opts = append(opts, membuf.WithCapacity(cfg.MemCapacity))
	}
	mem := membuf.NewManager(model, opts...)
	mem.AttachDevice(dev)
	t := &Transport{model: model, dev: dev, port: dev, mem: mem, pool: pool, cfg: cfg}
	t.stackp.Store(stack)
	return t
}

// HasUDP reports whether any UDP endpoint is open. UDP state cannot
// move across a libOS switch (the kernel side has no UDP surface), so
// SwitchKind refuses while one exists.
func (t *Transport) HasUDP() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.udps) > 0
}

// Export implements core.PortExporter: it detaches the endpoint's
// protocol objects and soft state for adoption by another transport.
// The old endpoint is left closed-in-place WITHOUT closing the
// connection — stale concurrent operations fail with queue.ErrClosed
// (retriable by failover) instead of racing the adopter.
func (t *Transport) Export(cep core.Endpoint) (core.PortState, bool) {
	e, ok := cep.(*endpoint)
	if !ok || e.t != t {
		return core.PortState{}, false
	}
	e.mu.Lock()
	st := core.PortState{
		Bound:     e.bound,
		LocalPort: e.localPort,
		Listening: e.listener != nil,
		Conn:      e.conn,
		Listener:  e.listener,
		Framer:    e.framer,
		Ready:     e.ready,
		Waiters:   e.waiters,
	}
	// The clone fn closes over this transport's pools; the adopter
	// re-binds its own.
	st.Framer.SetClone(nil)
	// Staged TX frames move as heap copies of their unsent bytes so the
	// membuf staging buffers can be freed back to this libOS now.
	for i := range e.txq {
		f := &e.txq[i]
		rest := append([]byte(nil), f.data[f.sent:]...)
		st.Tx = append(st.Tx, core.PortTx{Data: rest, Cost: f.cost, Done: f.done})
		if f.buf != nil {
			f.buf.Free()
		}
	}
	e.txq = nil
	e.ready = nil
	e.waiters = nil
	e.conn = nil
	e.listener = nil
	e.closed = true
	e.framer = sga.Framer{}
	e.mu.Unlock()
	e.connp.Store(nil)
	e.txPending.Store(0)
	e.readyLen.Store(0)
	e.waiterLen.Store(0)
	return st, true
}

// Adopt implements core.PortAdopter: it rebuilds a live endpoint from
// an exported PortState on this transport.
func (t *Transport) Adopt(st core.PortState) (core.Endpoint, error) {
	e := &endpoint{
		t:         t,
		bound:     st.Bound,
		localPort: st.LocalPort,
		listener:  st.Listener,
		conn:      st.Conn,
		framer:    st.Framer,
		ready:     st.Ready,
		waiters:   st.Waiters,
	}
	e.framer.SetClone(t.pooledCloneSGA)
	for _, f := range st.Tx {
		// Heap-backed frames (buf nil): flushTx just skips the staging
		// free. The bytes were framed by the exporter; they go out as-is.
		e.txq = append(e.txq, txFrame{data: f.Data, cost: f.Cost, done: f.Done})
	}
	if st.Conn != nil {
		e.connp.Store(st.Conn)
	}
	e.txPending.Store(int32(len(e.txq)))
	e.readyLen.Store(int32(len(e.ready)))
	e.waiterLen.Store(int32(len(e.waiters)))
	t.adopt(e)
	return e, nil
}
