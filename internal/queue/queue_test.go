package queue

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

func collect(t *testing.T) (DoneFunc, *Completion) {
	t.Helper()
	c := &Completion{Err: errors.New("not completed")}
	return func(comp Completion) { *c = comp }, c
}

func TestMemQueuePushPop(t *testing.T) {
	q := NewMemQueue(0)
	pushDone, pushC := collect(t)
	q.Push(sga.New([]byte("elem")), 42, pushDone)
	if pushC.Err != nil {
		t.Fatal(pushC.Err)
	}
	popDone, popC := collect(t)
	q.Pop(popDone)
	if popC.Err != nil {
		t.Fatal(popC.Err)
	}
	if string(popC.SGA.Bytes()) != "elem" {
		t.Fatalf("popped %q", popC.SGA.Bytes())
	}
	if popC.Cost != 42 {
		t.Fatalf("cost = %v, want 42", popC.Cost)
	}
}

func TestMemQueueFIFO(t *testing.T) {
	q := NewMemQueue(0)
	for i := 0; i < 10; i++ {
		done, _ := collect(t)
		q.Push(sga.New([]byte{byte(i)}), 0, done)
	}
	for i := 0; i < 10; i++ {
		done, c := collect(t)
		q.Pop(done)
		if c.SGA.Bytes()[0] != byte(i) {
			t.Fatalf("pop %d returned %d", i, c.SGA.Bytes()[0])
		}
	}
}

func TestMemQueuePopBeforePush(t *testing.T) {
	q := NewMemQueue(0)
	done, c := collect(t)
	q.Pop(done)
	if c.Err == nil {
		t.Fatal("pop completed before any push")
	}
	pd, _ := collect(t)
	q.Push(sga.New([]byte("late")), 7, pd)
	if c.Err != nil {
		t.Fatalf("waiter not completed: %v", c.Err)
	}
	if string(c.SGA.Bytes()) != "late" {
		t.Fatalf("got %q", c.SGA.Bytes())
	}
}

func TestMemQueueZeroCopy(t *testing.T) {
	// The popped SGA must alias the pushed buffer: no payload copies.
	q := NewMemQueue(0)
	buf := []byte("shared")
	pd, _ := collect(t)
	q.Push(sga.New(buf), 0, pd)
	done, c := collect(t)
	q.Pop(done)
	c.SGA.Segments[0].Buf[0] = 'X'
	if buf[0] != 'X' {
		t.Fatal("pop returned a copy, not the pushed buffer")
	}
}

func TestMemQueueCapacityBackpressure(t *testing.T) {
	q := NewMemQueue(2)
	var completed atomic.Int32
	for i := 0; i < 3; i++ {
		q.Push(sga.New([]byte{byte(i)}), 0, func(Completion) { completed.Add(1) })
	}
	if completed.Load() != 2 {
		t.Fatalf("completions = %d, want 2 (third push stalls)", completed.Load())
	}
	done, c := collect(t)
	q.Pop(done)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if completed.Load() != 3 {
		t.Fatal("stalled push not admitted after pop freed space")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestMemQueueClose(t *testing.T) {
	q := NewMemQueue(0)
	done, c := collect(t)
	q.Pop(done)
	q.Close()
	if !errors.Is(c.Err, ErrClosed) {
		t.Fatalf("waiter err = %v", c.Err)
	}
	pd, pc := collect(t)
	q.Push(sga.New([]byte("x")), 0, pd)
	if !errors.Is(pc.Err, ErrClosed) {
		t.Fatalf("push after close err = %v", pc.Err)
	}
}

// --- completer ---

func TestCompleterTryWait(t *testing.T) {
	c := NewCompleter()
	qt, done := c.NewToken()
	if _, ok, err := c.TryWait(qt); ok || err != nil {
		t.Fatal("token completed before done")
	}
	done(Completion{Kind: OpPop, Cost: 5})
	comp, ok, err := c.TryWait(qt)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if comp.Token != qt || comp.Cost != 5 {
		t.Fatalf("comp = %+v", comp)
	}
	// Consumed: a second wait is an error.
	if _, _, err := c.TryWait(qt); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompleterTokensUnique(t *testing.T) {
	c := NewCompleter()
	seen := make(map[QToken]bool)
	for i := 0; i < 1000; i++ {
		qt, _ := c.NewToken()
		if seen[qt] {
			t.Fatalf("token %d reused", qt)
		}
		seen[qt] = true
	}
}

func TestCompleterWaitChanExactlyOneWaiter(t *testing.T) {
	c := NewCompleter()
	qt, done := c.NewToken()
	ch, err := c.WaitChan(qt)
	if err != nil {
		t.Fatal(err)
	}
	// A second subscriber must be rejected: one waiter per token (§4.4).
	if _, err := c.WaitChan(qt); !errors.Is(err, ErrTokenClaimed) {
		t.Fatalf("second waiter err = %v", err)
	}
	done(Completion{Kind: OpPop})
	select {
	case comp := <-ch:
		if comp.Token != qt {
			t.Fatalf("comp = %+v", comp)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woken")
	}
	if c.Wakeups() != 1 {
		t.Fatalf("Wakeups = %d", c.Wakeups())
	}
}

func TestCompleterWaitChanAfterCompletion(t *testing.T) {
	c := NewCompleter()
	qt, done := c.NewToken()
	done(Completion{Kind: OpPush})
	ch, err := c.WaitChan(qt)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("already-complete token not delivered")
	}
}

func TestCompleterNoWastedWakeups(t *testing.T) {
	// N goroutines each wait on their own token; M < N completions
	// arrive. Exactly M goroutines wake; the rest stay blocked. This is
	// the §4.4 property the E5 experiment quantifies against epoll.
	c := NewCompleter()
	const n, m = 8, 3
	var tokens []QToken
	var dones []DoneFunc
	for i := 0; i < n; i++ {
		qt, done := c.NewToken()
		tokens = append(tokens, qt)
		dones = append(dones, done)
	}
	var woken atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ch, err := c.WaitChan(tokens[i])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(ch <-chan Completion) {
			defer wg.Done()
			if _, ok := <-ch; ok {
				woken.Add(1)
			}
		}(ch)
	}
	for i := 0; i < m; i++ {
		dones[i](Completion{Kind: OpPop})
	}
	deadline := time.Now().Add(2 * time.Second)
	for woken.Load() < m && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // would-be stragglers
	if woken.Load() != m {
		t.Fatalf("woken = %d, want exactly %d", woken.Load(), m)
	}
	if c.Wakeups() != m {
		t.Fatalf("Wakeups = %d, want %d", c.Wakeups(), m)
	}
	// Release the rest so the test exits cleanly.
	for i := m; i < n; i++ {
		dones[i](Completion{Kind: OpPop})
	}
	wg.Wait()
}

// --- composition ---

func TestFilterQueuePop(t *testing.T) {
	model := simclock.Datacenter2019()
	inner := NewMemQueue(0)
	f := NewFilterQueue(inner, func(s sga.SGA) bool { return s.Bytes()[0] == 'K' }, &model)
	for _, p := range []string{"drop1", "Keep1", "drop2", "Keep2"} {
		done, _ := collect(t)
		inner.Push(sga.New([]byte(p)), 0, done)
	}
	for _, want := range []string{"Keep1", "Keep2"} {
		done, c := collect(t)
		f.Pop(done)
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if string(c.SGA.Bytes()) != want {
			t.Fatalf("got %q, want %q", c.SGA.Bytes(), want)
		}
		if c.Cost < model.FilterNS {
			t.Fatal("filter cost not charged")
		}
	}
}

func TestFilterQueuePush(t *testing.T) {
	model := simclock.Datacenter2019()
	inner := NewMemQueue(0)
	f := NewFilterQueue(inner, func(s sga.SGA) bool { return len(s.Bytes()) > 2 }, &model)
	done, c := collect(t)
	f.Push(sga.New([]byte("ok")), 0, done)
	if !errors.Is(c.Err, ErrFiltered) {
		t.Fatalf("err = %v, want ErrFiltered", c.Err)
	}
	if inner.Len() != 0 {
		t.Fatal("rejected element reached inner queue")
	}
	done2, c2 := collect(t)
	f.Push(sga.New([]byte("long enough")), 0, done2)
	if c2.Err != nil {
		t.Fatal(c2.Err)
	}
	if inner.Len() != 1 {
		t.Fatal("accepted element missing from inner queue")
	}
}

func TestMapQueueBothDirections(t *testing.T) {
	model := simclock.Datacenter2019()
	upper := func(s sga.SGA) sga.SGA {
		b := s.Bytes()
		for i := range b {
			if b[i] >= 'a' && b[i] <= 'z' {
				b[i] -= 32
			}
		}
		return sga.New(b)
	}
	inner := NewMemQueue(0)
	m := NewMapQueue(inner, upper, &model)

	done, _ := collect(t)
	m.Push(sga.New([]byte("push")), 0, done)
	popDone, popC := collect(t)
	inner.Pop(popDone)
	if string(popC.SGA.Bytes()) != "PUSH" {
		t.Fatalf("push-side map: %q", popC.SGA.Bytes())
	}

	pd, _ := collect(t)
	inner.Push(sga.New([]byte("pop")), 0, pd)
	md, mc := collect(t)
	m.Pop(md)
	if string(mc.SGA.Bytes()) != "POP" {
		t.Fatalf("pop-side map: %q", mc.SGA.Bytes())
	}
	if mc.Cost < model.MapNS {
		t.Fatal("map cost not charged")
	}
}

func TestSortQueuePriorityOrder(t *testing.T) {
	inner := NewMemQueue(0)
	// Priority: lower first byte pops first.
	s := NewSortQueue(inner, func(a, b sga.SGA) bool { return a.Bytes()[0] < b.Bytes()[0] }, 8)
	for _, p := range []byte{5, 1, 9, 3, 7} {
		done, _ := collect(t)
		inner.Push(sga.New([]byte{p}), 0, done)
	}
	s.Pump() // prefetch into the heap
	var got []byte
	for i := 0; i < 5; i++ {
		done, c := collect(t)
		s.Pop(done)
		s.Pump()
		if c.Err != nil {
			t.Fatalf("pop %d: %v", i, c.Err)
		}
		got = append(got, c.SGA.Bytes()[0])
	}
	want := []byte{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSortQueueWaiterServedOnArrival(t *testing.T) {
	inner := NewMemQueue(0)
	s := NewSortQueue(inner, func(a, b sga.SGA) bool { return a.Bytes()[0] < b.Bytes()[0] }, 4)
	done, c := collect(t)
	s.Pop(done) // waits: nothing buffered
	s.Pump()
	pd, _ := collect(t)
	inner.Push(sga.New([]byte{42}), 0, pd)
	s.Pump()
	if c.Err != nil {
		t.Fatalf("waiter not served: %v", c.Err)
	}
	if c.SGA.Bytes()[0] != 42 {
		t.Fatalf("got %d", c.SGA.Bytes()[0])
	}
}

func TestMergeQueuePopFromEither(t *testing.T) {
	a, b := NewMemQueue(0), NewMemQueue(0)
	m := NewMergeQueue(a, b, 4)
	pd, _ := collect(t)
	a.Push(sga.New([]byte("from-a")), 0, pd)
	pd2, _ := collect(t)
	b.Push(sga.New([]byte("from-b")), 0, pd2)
	m.Pump()
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		done, c := collect(t)
		m.Pop(done)
		m.Pump()
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		got[string(c.SGA.Bytes())] = true
	}
	if !got["from-a"] || !got["from-b"] {
		t.Fatalf("merged pops = %v", got)
	}
}

func TestMergeQueuePushToBoth(t *testing.T) {
	a, b := NewMemQueue(0), NewMemQueue(0)
	m := NewMergeQueue(a, b, 4)
	done, c := collect(t)
	m.Push(sga.New([]byte("dup")), 0, done)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("lens = %d,%d, want 1,1", a.Len(), b.Len())
	}
}

func TestComposedPipeline(t *testing.T) {
	// filter -> map over a memory queue: the §4.3 pipeline shape.
	model := simclock.Datacenter2019()
	inner := NewMemQueue(0)
	f := NewFilterQueue(inner, func(s sga.SGA) bool { return s.Bytes()[0] != '#' }, &model)
	m := NewMapQueue(f, func(s sga.SGA) sga.SGA {
		return sga.New(append([]byte("out:"), s.Bytes()...))
	}, &model)
	for _, p := range []string{"#comment", "data1", "#skip", "data2"} {
		done, _ := collect(t)
		inner.Push(sga.New([]byte(p)), 0, done)
	}
	for _, want := range []string{"out:data1", "out:data2"} {
		done, c := collect(t)
		m.Pop(done)
		if c.Err != nil || string(c.SGA.Bytes()) != want {
			t.Fatalf("got %q err %v, want %q", c.SGA.Bytes(), c.Err, want)
		}
	}
}
