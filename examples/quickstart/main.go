// Quickstart: the Demikernel queue abstraction in its smallest form —
// memory queues, non-blocking push/pop returning qtokens, and the wait_*
// calls of Figure 3.
package main

import (
	"fmt"
	"log"

	demi "demikernel"
)

func main() {
	// A cluster holds the simulated world; a catnip node is a host with
	// a kernel-bypass NIC, a user-level stack, and the Demikernel API.
	cluster := demi.NewCluster(1)
	node := cluster.MustSpawn(demi.Catnip, demi.WithHost(1))

	// queue() — a plain memory queue (control path).
	qd := node.Queue()

	// push() is non-blocking: it returns a qtoken for the completion.
	req := demi.NewSGA([]byte("hello, "), []byte("queues"))
	pushToken, err := node.Push(qd, req)
	if err != nil {
		log.Fatal(err)
	}

	// wait() blocks (polling the libOS) until the operation completes.
	if _, err := node.Wait(pushToken); err != nil {
		log.Fatal(err)
	}

	// pop() returns the WHOLE element or nothing — never a fragment.
	comp, err := node.BlockingPop(qd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("popped %d segments, %d bytes: %q\n",
		comp.SGA.NumSegments(), comp.SGA.Len(), comp.SGA.Bytes())

	// wait_any() — the queue-native epoll replacement: one token per
	// outstanding operation, and the completion carries the data.
	q1, q2 := node.Queue(), node.Queue()
	t1, _ := node.Pop(q1)
	t2, _ := node.Pop(q2)
	if _, err := node.BlockingPush(q2, demi.NewSGA([]byte("second queue wins"))); err != nil {
		log.Fatal(err)
	}
	idx, comp, err := node.WaitAny([]demi.QToken{t1, t2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wait_any: queue #%d completed first with %q\n", idx+1, comp.SGA.Bytes())
}
