// Elastic RSS: the device-plane half of live resharding.
//
// A reshard changes how many receive queues RSS spreads new flows
// across, without reconfiguring the device's physical queue count.
// Real NICs expose exactly this knob: the RSS indirection table is
// reprogrammed to reference a subset of the provisioned queues
// (ethtool -X ... weight), and individual flows can be pinned to a
// specific queue with flow-director rules so established connections
// keep landing where their owning core polls while *new* flows hash
// over the new width. The simulated device mirrors both: SetRSSQueues
// narrows/widens the RSS modulus, SetFlowPins installs an exact-match
// flow table consulted before RSS. Both are copy-on-write mutations of
// the classification snapshot, so the RX hot path stays lock-free.
package nic

import "fmt"

// FlowKey identifies one TCP/IPv4 flow from the device's point of
// view: the remote endpoint plus the local destination port, exactly
// the tuple the host stack demultiplexes on. It is parsed from
// received frames in wire order.
type FlowKey struct {
	RemoteIP   [4]byte
	RemotePort uint16
	LocalPort  uint16
}

// FlowKeyOf parses the flow identity of an inbound IPv4 frame (no IP
// options). ok is false for non-IP traffic, fragments-with-options, or
// frames too short to carry transport ports; those fall through to RSS.
func FlowKeyOf(data []byte) (k FlowKey, ok bool) {
	const ethHdr = 14
	if len(data) < ethHdr+24 || data[12] != 0x08 || data[13] != 0x00 || data[14] != 0x45 {
		return FlowKey{}, false
	}
	copy(k.RemoteIP[:], data[ethHdr+12:ethHdr+16]) // src IP
	k.RemotePort = uint16(data[ethHdr+20])<<8 | uint16(data[ethHdr+21])
	k.LocalPort = uint16(data[ethHdr+22])<<8 | uint16(data[ethHdr+23])
	return k, true
}

// SetRSSQueues reprograms the RSS indirection width: new flows hash
// across queues [0, n) while the device keeps all provisioned rings
// live (pinned flows and hardware filters can still target any of
// them). n must be in [1, NumRxQueues]. The change is copy-on-write
// and applies from the next wire drain, like a real indirection-table
// write landing asynchronously to the RX pipeline.
func (d *Device) SetRSSQueues(n int) error {
	if n < 1 || n > len(d.rx) {
		return fmt.Errorf("nic: RSS width %d outside [1,%d]", n, len(d.rx))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rssQueues = n
	d.publishLocked()
	return nil
}

// RSSQueues reports the current RSS indirection width.
func (d *Device) RSSQueues() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rssQueues <= 0 || d.rssQueues > len(d.rx) {
		return len(d.rx)
	}
	return d.rssQueues
}

// SetFlowPins replaces the device's exact-match flow table: frames
// whose FlowKey appears in pins are steered to the pinned queue before
// RSS runs, the way flow-director rules keep established connections
// on their owning core across an indirection-table rewrite. The map is
// copied; nil or empty clears the table. Queue indexes are taken
// modulo the provisioned queue count. Each consulted frame is charged
// one offloaded-filter evaluation, like the hardware filter table.
func (d *Device) SetFlowPins(pins map[FlowKey]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(pins) == 0 {
		d.pins = nil
	} else {
		cp := make(map[FlowKey]int, len(pins))
		for k, q := range pins {
			cp[k] = ((q % len(d.rx)) + len(d.rx)) % len(d.rx)
		}
		d.pins = cp
	}
	d.publishLocked()
}

// PinnedFlows reports the current size of the exact-match flow table.
func (d *Device) PinnedFlows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pins)
}
