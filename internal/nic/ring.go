package nic

import "demikernel/internal/fabric"

// ring is a fixed-capacity single-producer/single-consumer style
// descriptor ring. The device serialises access with its own lock, so the
// ring itself needs no synchronisation; it exists to model the bounded
// descriptor rings of real hardware, including drop-on-full behaviour.
//
// Depths are rounded up to the next power of two so index wrap is a mask
// (a single AND) instead of a modulo — the same trick every hardware
// descriptor ring and DPDK's rte_ring play, and worth it here because
// push/pop sit on the per-frame hot path.
type ring struct {
	buf  []fabric.Frame
	mask int // len(buf)-1; len(buf) is a power of two
	head int // next slot to pop
	tail int // next slot to push
	n    int // occupied slots
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n < 1 {
		n = 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newRing(depth int) *ring {
	depth = nextPow2(depth)
	return &ring{buf: make([]fabric.Frame, depth), mask: depth - 1}
}

// push appends a frame; it reports false (dropping the frame) when full.
func (r *ring) push(f fabric.Frame) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[r.tail] = f
	r.tail = (r.tail + 1) & r.mask
	r.n++
	return true
}

// pop removes and returns the oldest frame.
func (r *ring) pop() (fabric.Frame, bool) {
	if r.n == 0 {
		return fabric.Frame{}, false
	}
	f := r.buf[r.head]
	r.buf[r.head] = fabric.Frame{}
	r.head = (r.head + 1) & r.mask
	r.n--
	return f, true
}

func (r *ring) len() int { return r.n }
