package demikernel

// Alloc-count guards for the pooled data path. These are hard
// regression fences: the thresholds have headroom over the measured
// steady state (echo RTT measures ~6 allocs/op with the completer
// freelists, down from ~47 before pooling), so incidental churn does
// not flake them, but any change that reintroduces per-packet or
// per-poll allocation trips them immediately.

import (
	"testing"

	"demikernel/internal/queue"
	"demikernel/internal/sched"
)

// TestHotPathAllocsCompleter requires the full token round trip
// (NewToken → done → TryWait) to be allocation-free once the per-shard
// freelists are warm: token states (including their DoneFunc closures)
// are recycled, so the completion publish path never boxes or allocates.
func TestHotPathAllocsCompleter(t *testing.T) {
	comp := queue.NewCompleter()
	roundTrip := func() {
		qt, done := comp.NewToken()
		done(queue.Completion{Kind: queue.OpPop})
		if _, ok, err := comp.TryWait(qt); !ok || err != nil {
			t.Fatal("token did not complete")
		}
	}
	for i := 0; i < 64; i++ {
		roundTrip() // warm every shard's freelist
	}
	if allocs := testing.AllocsPerRun(1000, roundTrip); allocs != 0 {
		t.Fatalf("completer round trip allocates %.1f objects/op, want 0", allocs)
	}
}

// TestHotPathAllocsEchoRTT bounds allocations for one full echo round
// trip (client push → server pop → echo push → client pop) on the
// manually-pumped rig. With completer token states recycled through the
// per-shard freelists the measured steady state is ~6 allocs/op (SGA
// headers and per-segment bookkeeping); payload bytes, TX frames, RX
// staging, and completion records all come from pools.
func TestHotPathAllocsEchoRTT(t *testing.T) {
	cli, srv, cqd, sqd, cleanup := hotPathPair(t)
	defer cleanup()
	payload := NewSGA(make([]byte, 64))
	echoRTT(t, cli, srv, cqd, sqd, payload) // warm pools and scratch

	// Zero-alloc decode plus buffered TX brought the measured steady
	// state to 0; keep a little slack for incidental runtime churn.
	const limit = 2.0
	allocs := testing.AllocsPerRun(100, func() {
		echoRTT(t, cli, srv, cqd, sqd, payload)
	})
	if allocs > limit {
		t.Fatalf("echo RTT allocates %.1f objects/op, want <= %.0f", allocs, limit)
	}
}

// TestHotPathAllocsRingEchoRTT is the fence for the acceptance
// criterion of the syscall-free ring path: a full batched echo round
// trip — SQE submit, Poll-side drain, slab-armed completion, CQE
// harvest on both rings — must be exactly allocation-free once warm.
func TestHotPathAllocsRingEchoRTT(t *testing.T) {
	r := newRingEchoRig(t)
	defer r.cleanup()
	payload := NewSGA(make([]byte, 64))
	r.roundTrips(t, payload, 8) // warm pools and scratch

	if allocs := testing.AllocsPerRun(100, func() {
		r.roundTrips(t, payload, 8)
	}); allocs != 0 {
		t.Fatalf("ring echo RTT allocates %.1f objects/batch, want 0", allocs)
	}
}

// TestHotPathAllocsIdlePoll requires a steady-state LibOS.Poll over
// connected-but-idle descriptors to be allocation-free: the poll list
// is generation-cached and every per-poll scratch buffer is reused.
func TestHotPathAllocsIdlePoll(t *testing.T) {
	cli, srv, _, _, cleanup := hotPathPair(t)
	defer cleanup()
	cli.Poll()
	srv.Poll()

	for name, l := range map[string]*LibOS{"client": cli, "server": srv} {
		if allocs := testing.AllocsPerRun(1000, func() { l.Poll() }); allocs != 0 {
			t.Errorf("%s idle Poll allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

// TestHotPathAllocsEventLoopTick requires an idle EventLoop tick to be
// allocation-free: ready-list dispatch does no per-token probing and
// the acceptor snapshot is cached.
func TestHotPathAllocsEventLoopTick(t *testing.T) {
	cli, _, _, _, cleanup := hotPathPair(t)
	defer cleanup()
	el := sched.New(cli)
	el.Tick()

	if allocs := testing.AllocsPerRun(1000, func() { el.Tick() }); allocs != 0 {
		t.Errorf("idle EventLoop.Tick allocates %.1f objects/op, want 0", allocs)
	}
}
