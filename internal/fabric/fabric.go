// Package fabric simulates the datacenter network that connects the
// simulated kernel-bypass NICs: a learning Ethernet switch with per-link
// propagation delay and configurable fault injection (loss, duplication,
// reordering).
//
// The fabric transports raw Ethernet frames as byte slices, exactly as a
// physical wire would; all structure above the Ethernet header is the
// business of the network stacks built on top (package netstack). Each
// frame also carries an accumulated virtual-latency cost (see package
// simclock) so end-to-end simulated latency can be reported
// deterministically.
package fabric

import (
	"fmt"
	"math/rand"
	"sync"

	"demikernel/internal/simclock"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// MinFrameLen is the smallest frame the fabric will carry: a full
// Ethernet header (two MACs and an EtherType).
const MinFrameLen = 14

// Frame is one Ethernet frame in flight, with its accumulated virtual
// cost. Data holds the full frame starting at the destination MAC.
type Frame struct {
	Data []byte
	Cost simclock.Lat
}

// DstMAC returns the destination address of a well-formed frame.
func (f Frame) DstMAC() MAC { var m MAC; copy(m[:], f.Data[0:6]); return m }

// SrcMAC returns the source address of a well-formed frame.
func (f Frame) SrcMAC() MAC { var m MAC; copy(m[:], f.Data[6:12]); return m }

// Impairments configures fault injection on a switch. Rates are
// probabilities in [0,1]; injection draws from a deterministic seeded
// source so experiments are reproducible.
type Impairments struct {
	LossRate    float64
	DupRate     float64
	ReorderRate float64 // probability a frame is held and swapped with the next
	ExtraDelay  simclock.Lat
}

// Stats counts fabric-level events.
type Stats struct {
	Delivered       int64
	Flooded         int64
	DroppedRxFull   int64
	InjectedLoss    int64
	InjectedDup     int64
	InjectedReorder int64
}

// Switch is a learning Ethernet switch. Ports attach with NewPort; frames
// sent on one port are delivered to the port that owns the destination
// MAC, or flooded when the destination is unknown or broadcast.
//
// Switch is safe for concurrent use.
type Switch struct {
	model *simclock.CostModel

	mu     sync.Mutex
	ports  []*Port
	macTab map[MAC]*Port
	imp    Impairments
	rng    *rand.Rand
	held   *heldFrame // one-slot reorder buffer
	stats  Stats
}

type heldFrame struct {
	frame Frame
	from  *Port
}

// NewSwitch returns a switch charging wire costs from model, with fault
// injection driven by seed.
func NewSwitch(model *simclock.CostModel, seed int64) *Switch {
	return &Switch{
		model:  model,
		macTab: make(map[MAC]*Port),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// SetImpairments replaces the fault-injection configuration.
func (s *Switch) SetImpairments(imp Impairments) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.imp = imp
}

// Stats returns a snapshot of the switch counters.
func (s *Switch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DefaultPortRing is the default depth of a port's receive ring.
const DefaultPortRing = 1024

// Port is one attachment point on the switch. A simulated NIC owns a port
// and polls frames from it.
type Port struct {
	sw *Switch
	rx chan Frame
}

// NewPort attaches a new port with the given receive-ring depth (0 means
// DefaultPortRing).
func (s *Switch) NewPort(ringDepth int) *Port {
	if ringDepth <= 0 {
		ringDepth = DefaultPortRing
	}
	p := &Port{sw: s, rx: make(chan Frame, ringDepth)}
	s.mu.Lock()
	s.ports = append(s.ports, p)
	s.mu.Unlock()
	return p
}

// Send transmits a frame into the fabric. Short frames are dropped, as a
// physical switch would drop runts.
func (p *Port) Send(f Frame) {
	if len(f.Data) < MinFrameLen {
		return
	}
	s := p.sw
	s.mu.Lock()
	defer s.mu.Unlock()

	// Learn the source address.
	s.macTab[f.SrcMAC()] = p

	// Fault injection.
	if s.imp.LossRate > 0 && s.rng.Float64() < s.imp.LossRate {
		s.stats.InjectedLoss++
		return
	}
	frames := []Frame{f}
	if s.imp.DupRate > 0 && s.rng.Float64() < s.imp.DupRate {
		s.stats.InjectedDup++
		dup := f
		dup.Data = append([]byte(nil), f.Data...)
		frames = append(frames, dup)
	}
	if s.imp.ReorderRate > 0 {
		if s.held != nil {
			// Deliver the new frame first, then the held one.
			heldF, heldFrom := s.held.frame, s.held.from
			s.held = nil
			for _, fr := range frames {
				s.forwardLocked(fr, p)
			}
			s.forwardLocked(heldF, heldFrom)
			return
		}
		if s.rng.Float64() < s.imp.ReorderRate {
			s.stats.InjectedReorder++
			s.held = &heldFrame{frame: f, from: p}
			return
		}
	}
	for _, fr := range frames {
		s.forwardLocked(fr, p)
	}
}

// Flush delivers any frame held by the reorder buffer. Tests and quiesce
// paths call it so a trailing held frame is not lost.
func (s *Switch) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held != nil {
		h := s.held
		s.held = nil
		s.forwardLocked(h.frame, h.from)
	}
}

func (s *Switch) forwardLocked(f Frame, from *Port) {
	f.Cost += s.model.WireDelayNS + s.imp.ExtraDelay
	dst := f.DstMAC()
	if !dst.IsBroadcast() {
		if out, ok := s.macTab[dst]; ok {
			s.deliverLocked(out, f)
			return
		}
	}
	// Broadcast or unknown destination: flood.
	s.stats.Flooded++
	for _, out := range s.ports {
		if out == from {
			continue
		}
		df := f
		df.Data = append([]byte(nil), f.Data...)
		s.deliverLocked(out, df)
	}
}

func (s *Switch) deliverLocked(out *Port, f Frame) {
	select {
	case out.rx <- f:
		s.stats.Delivered++
	default:
		s.stats.DroppedRxFull++
	}
}

// Poll returns the next received frame without blocking.
func (p *Port) Poll() (Frame, bool) {
	select {
	case f := <-p.rx:
		return f, true
	default:
		return Frame{}, false
	}
}

// Recv returns the port's receive channel for event-driven consumers.
func (p *Port) Recv() <-chan Frame { return p.rx }
