package telemetry

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a.b")
	c1.Inc()
	c1.Add(4)
	if c2 := r.Counter("a.b"); c2 != c1 {
		t.Fatal("Counter(\"a.b\") returned a different handle on second call")
	}
	if got := r.Counter("a.b").Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(9)
	g.Add(-2)
	if got := r.Gauge("depth").Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestSnapshotDeterminism: snapshots are sorted by name and two
// snapshots of unchanged state are identical, so diffs are stable no
// matter the registration order.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz").Add(1)
	r.Counter("aaa").Add(2)
	r.Gauge("mmm").Set(3)
	r.RegisterFunc("fff", func() int64 { return 4 })

	s1 := r.Snapshot()
	s2 := r.Snapshot()

	names := make([]string, len(s1.Samples))
	for i, smp := range s1.Samples {
		names[i] = smp.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	if !reflect.DeepEqual(s1.Samples, s2.Samples) {
		t.Fatalf("snapshots of unchanged state differ:\n%v\n%v", s1.Samples, s2.Samples)
	}
	if v, ok := s1.Get("mmm"); !ok || v != 3 {
		t.Fatalf("Get(mmm) = %d,%v", v, ok)
	}
	if _, ok := s1.Get("nope"); ok {
		t.Fatal("Get of unknown sample reported ok")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	c.Add(10)
	g.Set(5)
	before := r.Snapshot()
	c.Add(7)
	g.Set(2)
	r.Counter("late").Add(3) // registered after the first snapshot
	after := r.Snapshot()

	d := after.Diff(before)
	want := map[string]int64{"ops": 7, "depth": -3, "late": 3}
	if len(d.Samples) != len(want) {
		t.Fatalf("diff has %d samples, want %d: %v", len(d.Samples), len(want), d.Samples)
	}
	for _, smp := range d.Samples {
		if want[smp.Name] != smp.Value {
			t.Errorf("diff[%s] = %d, want %d", smp.Name, smp.Value, want[smp.Name])
		}
	}
}

func TestSnapshotNonZeroAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("hot").Add(2)
	r.Counter("cold") // stays zero
	s := r.Snapshot().NonZero()
	if len(s.Samples) != 1 || s.Samples[0].Name != "hot" {
		t.Fatalf("NonZero = %v", s.Samples)
	}
	out := s.String()
	if !strings.Contains(out, "hot") || strings.Contains(out, "cold") {
		t.Fatalf("String() = %q", out)
	}
}

func TestUnregisterPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("nic.tx").Add(1)
	r.Counter("nic.rx").Add(1)
	r.Counter("stack.in").Add(1)
	r.Unregister("nic.")
	s := r.Snapshot()
	if _, ok := s.Get("nic.tx"); ok {
		t.Fatal("nic.tx survived Unregister")
	}
	if _, ok := s.Get("stack.in"); !ok {
		t.Fatal("stack.in was removed by an unrelated Unregister")
	}
}

// TestRegistryConcurrency: handles and snapshots from many goroutines,
// meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(i))
				_ = r.Snapshot()
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := r.Counter("shared").Load(); got != 2000 {
		t.Fatalf("shared = %d, want 2000", got)
	}
}
