package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"demikernel/internal/simclock"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(simclock.Lat(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("P50 = %v", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Fatalf("P99 = %v", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %v", got)
	}
	// The exact mean of 1..100 is 50.5; Mean rounds half-up to 51. (The
	// old integer division truncated to 50, under-reporting every
	// summary by up to a full nanosecond.)
	if got := h.Mean(); got != 51 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summarize()
	if s.Count != 0 || s.P50 != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(42)
	s := h.Summarize()
	if s.P50 != 42 || s.P99 != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("%+v", s)
	}
}

func TestRecordAfterPercentileStaysSorted(t *testing.T) {
	var h Histogram
	h.Record(10)
	_ = h.Percentile(50)
	h.Record(5)
	if got := h.Min(); got != 5 {
		t.Fatalf("Min after late record = %v", got)
	}
}

func TestPropPercentileBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h Histogram
		var vals []int64
		n := 1 + r.Intn(500)
		for i := 0; i < n; i++ {
			v := r.Int63n(1_000_000)
			vals = append(vals, v)
			h.Record(simclock.Lat(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		p50 := int64(h.Percentile(50))
		p99 := int64(h.Percentile(99))
		// Percentiles must be actual samples, ordered, and bounded.
		return p50 >= vals[0] && p99 <= vals[len(vals)-1] && p50 <= p99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Echo latency", "path", "p50", "p99")
	tb.AddRow("kernel", simclock.Lat(9000), simclock.Lat(12000))
	tb.AddRow("catnip", simclock.Lat(4000), simclock.Lat(5000))
	tb.Note = "lower is better"
	out := tb.String()
	for _, want := range []string{"Echo latency", "kernel", "catnip", "9.00µs", "lower is better"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| path | p50 | p99 |") {
		t.Fatalf("markdown header missing:\n%s", md)
	}
	if !strings.Contains(md, "### Echo latency") {
		t.Fatal("markdown title missing")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("x", "v")
	tb.AddRow(1.23456)
	if !strings.Contains(tb.String(), "1.23") {
		t.Fatalf("float not formatted: %s", tb.String())
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(200, 100); got != "2.00x" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(100, 0); got != "inf" {
		t.Fatalf("Ratio/0 = %q", got)
	}
}
