package demikernel

// Chaos tests: scheduled fault injection (package internal/chaos) driven
// through the full Demikernel stack. The paper's argument is that
// kernel-bypass devices ship without the OS safety net, so the libOS must
// supply it; these tests attack that net on a seeded schedule and require
// that applications see typed errors and full recovery — never hangs,
// never silent corruption.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"demikernel/internal/apps/kv"
	"demikernel/internal/chaos"
	"demikernel/internal/fabric"
	"demikernel/internal/libos/catfish"
	"demikernel/internal/libos/catmint"
	"demikernel/internal/netstack"
	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/spdk"
)

// chaosConnect is connectNodes plus the listener descriptor, which chaos
// tests need to accept replacement connections after a partition heals.
func chaosConnect(t *testing.T, cluster *Cluster, cli, srv *Node, port uint16) (cqd, lqd, sqd QD, cleanup func()) {
	t.Helper()
	stopS := srv.Background()
	stopC := cli.Background()
	var err error
	if lqd, err = srv.Socket(); err != nil {
		t.Fatal(err)
	}
	if err = srv.Bind(lqd, Addr{Port: port}); err != nil {
		t.Fatal(err)
	}
	if err = srv.Listen(lqd); err != nil {
		t.Fatal(err)
	}
	if cqd, err = cli.Socket(); err != nil {
		t.Fatal(err)
	}
	if err = cli.Connect(cqd, cluster.AddrOf(srv, port)); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if sqd, err = srv.Accept(lqd); err != nil {
		t.Fatalf("accept: %v", err)
	}
	return cqd, lqd, sqd, func() { stopC(); stopS() }
}

// typedErr reports whether err (or a completion error) is one of the
// typed failure sentinels a chaos run may legitimately surface. Anything
// else — and in particular a silent wrong answer — fails the soak.
func typedErr(err error) bool {
	for _, want := range []error{
		ErrWaitTimeout,
		netstack.ErrMaxRetransmits,
		netstack.ErrConnectTimeout,
		catmint.ErrQPBroken,
		catmint.ErrOpTimeout,
		catmint.ErrReconnecting,
		catmint.ErrPeerDead,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	// queue.ErrClosed surfaces when the server dropped a half-dead
	// connection; the client answers it by reconnecting.
	return errors.Is(err, queue.ErrClosed)
}

// TestChaosSoakKV runs the KV application over each transport while a
// seeded chaos schedule attacks the fabric or device underneath: loss and
// corruption, then a partition, then heal (network); injected media
// errors and a controller reset (storage). During the fault window
// operations may fail — but only with typed errors, within the configured
// timeouts. After heal the application must make progress again and every
// successful read must return exactly the value written.
func TestChaosSoakKV(t *testing.T) {
	t.Run("catnip", func(t *testing.T) { chaosSoakNet(t, "catnip") })
	t.Run("catmint", func(t *testing.T) { chaosSoakNet(t, "catmint") })
	t.Run("catfish", chaosSoakCatfish)
}

func chaosSoakNet(t *testing.T, flavor string) {
	c := NewCluster(42)
	var srvNode, cliNode *Node
	switch flavor {
	case "catnip":
		srvNode = c.MustSpawn(Catnip, WithHost(1))
		// Short retransmission budget so a partitioned connection gives
		// up inside the fault window instead of riding it out.
		cliNode = c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4}))
	case "catmint":
		srvNode = c.MustSpawn(Catmint, WithHost(1))
		cliNode = c.MustSpawn(Catmint, WithConfig(NodeConfig{
			Host: 2, OpTimeout: 10 * time.Millisecond,
			MaxReconnects: 40, ReconnectBackoff: time.Millisecond,
		}))
	}
	cliNode.WaitTimeout = 200 * time.Millisecond

	srv := kv.NewServer(srvNode.LibOS, &c.Model)
	if err := srv.Listen(6379); err != nil {
		t.Fatal(err)
	}
	defer srvNode.Background()()
	defer cliNode.Background()()
	stop := make(chan struct{})
	defer close(stop)
	go srv.Run(stop)

	cli := kv.NewClient(cliNode.LibOS)
	addr := c.AddrOf(srvNode, 6379)
	if err := cli.Connect(addr); err != nil {
		t.Fatal(err)
	}

	// The seeded schedule: a loss+corruption phase, a clean gap so both
	// sides re-stabilise, then a hard partition of the client's link,
	// then heal. The gap guarantees the client is healthy — and therefore
	// transmitting — when the partition lands.
	port := cliNode.FabricPort()
	eng := chaos.New(42).
		ImpairAll(0, c.Switch, fabric.Impairments{LossRate: 0.03, CorruptRate: 0.12}).
		ImpairAll(60*time.Millisecond, c.Switch, fabric.Impairments{}).
		LinkDown(100*time.Millisecond, c.Switch, port).
		LinkUp(200*time.Millisecond, c.Switch, port)
	eng.Start()

	expected := make(map[string][]byte)
	var failures, successes, postHealOK int
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; postHealOK < 20; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after heal: %d successes, %d typed failures, %d post-heal",
				successes, failures, postHealOK)
		}
		eng.Step()
		key := fmt.Sprintf("k%02d", i%8)
		val := bytes.Repeat([]byte{byte(i)}, 64+i%257)
		if _, err := cli.Set(key, val); err != nil {
			if !typedErr(err) {
				t.Fatalf("set %d failed with untyped error: %v", i, err)
			}
			failures++
			// catnip connections are terminal after give-up: reconnect
			// at the application level. catmint redials the same queue
			// pair underneath, so the same client keeps working.
			if flavor == "catnip" {
				_ = cli.Connect(addr) // fails fast while partitioned
			}
			continue
		}
		expected[key] = val
		got, _, found, err := cli.Get(key)
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("get %d failed with untyped error: %v", i, err)
			}
			failures++
			if flavor == "catnip" {
				_ = cli.Connect(addr)
			}
			continue
		}
		if !found || !bytes.Equal(got, expected[key]) {
			t.Fatalf("iteration %d: corrupted response for %q: got %d bytes, want %d",
				i, key, len(got), len(expected[key]))
		}
		successes++
		if eng.Done() {
			postHealOK++
		}
	}
	if successes == 0 {
		t.Fatal("no operation ever succeeded")
	}
	if failures == 0 {
		t.Fatal("the partition never produced a visible failure: fault schedule did not bite")
	}

	// The schedule must actually have fired on the wire.
	st := c.Switch.Stats()
	if st.InjectedCorrupt == 0 {
		t.Fatal("no frames were corrupted despite CorruptRate")
	}
	if st.LinkDownDrops == 0 {
		t.Fatal("no frames were dropped despite the partition")
	}
	ps := c.Switch.PortStats(port)
	if ps.LinkDownDrops == 0 {
		t.Fatal("partition drops were not attributed to the targeted port")
	}
	if got := eng.Fired(); len(got) != 4 {
		t.Fatalf("schedule fired %d/4 events: %v", len(got), got)
	}
	switch flavor {
	case "catnip":
		if cliNode.Catnip.Stack().Stats().GiveUps == 0 {
			t.Fatal("the TCP stack never declared the peer dead")
		}
	case "catmint":
		if cliNode.Catmint.Reconnects() == 0 {
			t.Fatal("catmint never redialed the broken queue pair")
		}
	}
}

// TestChaosShardedKV aims the same fault schedule at the 4-shard
// share-nothing KV server: loss+corruption, a clean gap, a hard
// partition of the client's link, then heal. The sharded runtime must
// behave exactly as the single-core server did — typed errors only,
// full recovery after heal — and additionally keep its share-nothing
// invariants through the chaos: an RSS-aligned client never crosses
// the mesh (retransmitted frames carry the same flow tuple, so they
// re-hash to the same queue), no forward is ever dropped, and the
// frame-conservation laws hold across the shared NIC and all four
// per-shard stacks once the world quiesces.
func TestChaosShardedKV(t *testing.T) {
	const shards = 4
	c := NewCluster(44)
	srvNode := c.MustSpawn(Catnip, WithHost(1), WithShards(shards)).Sharded
	// Short retransmission budget so partitioned connections give up
	// inside the fault window instead of riding it out.
	cliNode := c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4}))
	cliNode.WaitTimeout = 200 * time.Millisecond

	server := kv.NewShardedServer(srvNode.Libs, &c.Model, srvNode.Mesh())
	const port = 6379
	if err := server.Listen(port); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	var stopSrvOnce sync.Once
	stopServer := func() { stopSrvOnce.Do(func() { close(stop); wg.Wait() }) }
	defer stopServer()
	stopCliBg := cliNode.Background()
	var stopCliOnce sync.Once
	stopClient := func() { stopCliOnce.Do(stopCliBg) }
	defer stopClient()

	// dial builds a fresh RSS-aligned sharded client. The seed varies per
	// attempt so a reconnect after TCP give-up picks fresh source ports —
	// SourcePortFor keeps every choice aligned with its target shard.
	dial := func(attempt int) (*kv.ShardedClient, error) {
		return kv.NewShardedClient(cliNode.LibOS, shards, func(i int) (QD, error) {
			return c.Router().DialShard(cliNode, srvNode, port, i, uint16(3000*i+7+attempt*131))
		})
	}
	cli, err := dial(0)
	if err != nil {
		t.Fatal(err)
	}

	fport := cliNode.FabricPort()
	eng := chaos.New(44).
		ImpairAll(0, c.Switch, fabric.Impairments{LossRate: 0.03, CorruptRate: 0.12}).
		ImpairAll(60*time.Millisecond, c.Switch, fabric.Impairments{}).
		LinkDown(100*time.Millisecond, c.Switch, fport).
		LinkUp(200*time.Millisecond, c.Switch, fport)
	eng.Start()

	expected := make(map[string][]byte)
	var failures, successes, postHealOK, attempt int
	// catnip connections are terminal after give-up: replace the whole
	// sharded client. While partitioned the redial itself fails fast with
	// a typed error; cli stays nil and the next iteration tries again.
	redial := func() bool {
		attempt++
		if cli != nil {
			_ = cli.Close()
			cli = nil
		}
		fresh, err := dial(attempt)
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("redial %d failed with untyped error: %v", attempt, err)
			}
			return false
		}
		cli = fresh
		return true
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; postHealOK < 20; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after heal: %d successes, %d typed failures, %d post-heal",
				successes, failures, postHealOK)
		}
		eng.Step()
		if cli == nil {
			if !redial() {
				failures++
				continue
			}
		}
		key := fmt.Sprintf("shard-k%02d", i%16)
		val := bytes.Repeat([]byte{byte(i)}, 48+i%131)
		if _, err := cli.Set(key, val); err != nil {
			if !typedErr(err) {
				t.Fatalf("set %d failed with untyped error: %v", i, err)
			}
			failures++
			redial()
			continue
		}
		expected[key] = val
		got, _, found, err := cli.Get(key)
		if err != nil {
			if !typedErr(err) {
				t.Fatalf("get %d failed with untyped error: %v", i, err)
			}
			failures++
			redial()
			continue
		}
		if !found || !bytes.Equal(got, expected[key]) {
			t.Fatalf("iteration %d: corrupted response for %q: got %d bytes, want %d",
				i, key, len(got), len(expected[key]))
		}
		successes++
		if eng.Done() {
			postHealOK++
		}
	}
	if successes == 0 {
		t.Fatal("no operation ever succeeded")
	}
	if failures == 0 {
		t.Fatal("the fault schedule never produced a visible failure")
	}

	// The schedule must actually have fired on the wire.
	st := c.Switch.Stats()
	if st.InjectedCorrupt == 0 {
		t.Fatal("no frames were corrupted despite CorruptRate")
	}
	if st.LinkDownDrops == 0 {
		t.Fatal("no frames were dropped despite the partition")
	}
	if got := eng.Fired(); len(got) != 4 {
		t.Fatalf("schedule fired %d/4 events: %v", len(got), got)
	}
	if cliNode.Catnip.Stack().Stats().GiveUps == 0 {
		t.Fatal("the client TCP stack never declared a peer dead")
	}

	// Share-nothing invariants survived the chaos: the aligned client
	// never crossed the mesh and the mesh never dropped a message.
	var fwdOut, fwdIn, fwdDrops int64
	for i := 0; i < server.Size(); i++ {
		s := server.StatsOf(i)
		fwdOut += s.ForwardedOut
		fwdIn += s.ForwardedIn
		fwdDrops += s.ForwardDrops
	}
	if fwdOut != 0 || fwdIn != 0 {
		t.Fatalf("aligned chaos run crossed the mesh: out=%d in=%d", fwdOut, fwdIn)
	}
	if fwdDrops != 0 {
		t.Fatalf("mesh dropped %d forwards", fwdDrops)
	}

	// Frame conservation across the sharded datapath. Quiesce first:
	// stop injecting, release the reorder buffer, pump until in-flight
	// frames land in a counter, then freeze both sides so counters stop
	// moving while the laws are read.
	c.Switch.SetImpairments(fabric.Impairments{})
	c.Switch.Flush()
	qdeadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(qdeadline) {
		c.Poll()
		c.Switch.Flush()
		time.Sleep(time.Millisecond)
	}
	stopServer()
	stopClient()

	// Law 1 — the wire loses nothing silently.
	sw := c.Switch
	fs := sw.Stats()
	var sumTx int64
	for id := 0; id < sw.NumPorts(); id++ {
		sumTx += sw.PortStats(id).TxFrames
	}
	if lhs, rhs := sumTx+fs.InjectedDup, fs.Delivered+fs.InjectedLoss+fs.LinkDownDrops+fs.DroppedRxFull; lhs != rhs {
		t.Fatalf("fabric conservation violated: tx+dup=%d != delivered+loss+linkdown+rxfull=%d", lhs, rhs)
	}

	// Law 2 — every frame delivered to the shared NIC port is in a
	// device counter (force a wire drain so delivered frames ring first).
	dev := srvNode.Set.Device()
	dev.QueueDepth(0)
	ds := dev.Stats()
	ps := sw.PortStats(dev.PortID())
	if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops {
		t.Fatalf("nic conservation violated: delivered=%d != rx=%d+dropped=%d+filtered=%d",
			ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops)
	}

	// Law 3 — every frame the NIC counted as received is in some shard
	// stack's FramesIn or still sitting in one of the RX rings.
	srvNode.Poll() // ingest anything the forced drain just ringed
	ds = dev.Stats()
	var occ int64
	for q := 0; q < dev.NumRxQueues(); q++ {
		occ += int64(dev.RxOccupancy(q))
	}
	var framesIn int64
	for i := 0; i < srvNode.Size(); i++ {
		framesIn += srvNode.Set.Shard(i).Stack().Stats().FramesIn
	}
	if ds.RxFrames != framesIn+occ {
		t.Fatalf("stack conservation violated: nic rx=%d != sum frames_in=%d + rings=%d",
			ds.RxFrames, framesIn, occ)
	}
}

// chaosSoakCatfish drives the storage leg: durable record appends while
// the chaos schedule injects media errors and a controller reset. The
// retry loop in catfish must absorb the transients; after the run every
// record must read back intact — including across a restart.
func chaosSoakCatfish(t *testing.T) {
	c := NewCluster(43)
	node, err := c.Spawn(Catfish, WithBlocks(0))
	if err != nil {
		t.Fatal(err)
	}
	qd, err := node.Open("/chaos/log")
	if err != nil {
		t.Fatal(err)
	}
	dev := node.Catfish.Device()
	eng := chaos.New(43).
		IOErrorRate(0, dev, 0.15).
		ControllerReset(8*time.Millisecond, dev, 3).
		IOErrorRate(16*time.Millisecond, dev, 0)
	eng.Start()

	const records = 80
	var want [][]byte
	for i := 0; i < records; i++ {
		eng.Step()
		rec := append([]byte(fmt.Sprintf("rec-%04d:", i)), bytes.Repeat([]byte{byte(i)}, 100+i)...)
		s := NewSGA(rec)
		if i%2 == 0 {
			// Alternate pooled staging buffers (AllocSGA) so the soak
			// exercises the pool's consume-on-durable-push ownership
			// under faults; the leak assert below holds it to zero.
			s = node.Catfish.AllocSGA(len(rec))
			copy(s.Segments[0].Buf, rec)
		}
		comp, err := node.BlockingPush(qd, s)
		if err != nil || comp.Err != nil {
			t.Fatalf("push %d not absorbed by the retry budget: %v %v", i, err, comp.Err)
		}
		want = append(want, rec)
		time.Sleep(300 * time.Microsecond)
	}
	for !eng.Done() {
		eng.Step()
		time.Sleep(time.Millisecond)
	}

	st := dev.Stats()
	if st.Resets == 0 {
		t.Fatal("controller reset never fired")
	}
	if st.InjectedErrors == 0 {
		t.Fatal("no media errors were injected despite the armed rate")
	}
	if node.Catfish.Retries() == 0 {
		t.Fatal("the retry loop never absorbed a transient failure")
	}

	verify := func(n *Node, label string) {
		qd, err := n.Open("/chaos/log")
		if err != nil {
			t.Fatalf("%s open: %v", label, err)
		}
		for i := 0; i < records; i++ {
			comp, err := n.BlockingPop(qd)
			if err != nil || comp.Err != nil {
				t.Fatalf("%s pop %d: %v %v", label, i, err, comp.Err)
			}
			if !bytes.Equal(comp.SGA.Bytes(), want[i]) {
				t.Fatalf("%s record %d corrupted", label, i)
			}
		}
	}
	verify(node, "same-process")

	// Restart: recover the log from the same device and re-verify.
	node2, err := c.Spawn(Catfish, WithDisk(dev))
	if err != nil {
		t.Fatalf("recovery after chaos run: %v", err)
	}
	verify(node2, "post-restart")

	// Leak assert: every pooled staging buffer the soak allocated
	// (AllocSGA-staged pushes) was consumed by its durable append —
	// even the ones whose first attempts died to injected faults.
	if out := node.Catfish.Pool().Outstanding(); out != 0 {
		t.Fatalf("%d pooled SGA buffers leaked across the chaos soak", out)
	}
}

// TestChaosTCPGiveUp partitions a catnip client mid-connection and
// requires the user-level TCP stack to give up with typed errors — the
// hang-free failure handling §2 says nobody below the libOS will provide.
func TestChaosTCPGiveUp(t *testing.T) {
	c := NewCluster(301)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithConfig(NodeConfig{Host: 2, RTO: time.Millisecond, MaxRetransmits: 3}))
	cqd, lqd, _, cleanup := chaosConnect(t, c, cli, srv, 80)
	defer cleanup()

	eng := chaos.New(301)
	eng.LinkDown(0, c.Switch, cli.FabricPort())
	eng.Start()
	eng.Step()

	// A push is accepted into the send buffer, but the bytes can never
	// be delivered: the stack must retransmit, give up, and fail the
	// next operation with ErrMaxRetransmits — well inside the wait
	// deadline, so this is a typed error, not a hang.
	start := time.Now()
	qt, err := cli.Push(cqd, NewSGA([]byte("into the void")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Wait(qt); err != nil {
		t.Fatalf("push wait: %v", err)
	}
	comp, err := cli.BlockingPop(cqd)
	if err == nil && comp.Err == nil {
		t.Fatal("pop succeeded across a partition")
	}
	popErr := err
	if popErr == nil {
		popErr = comp.Err
	}
	if !errors.Is(popErr, netstack.ErrMaxRetransmits) {
		t.Fatalf("pop failed with %v, want ErrMaxRetransmits", popErr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("give-up took %v: that is a hang, not failure detection", elapsed)
	}
	if cli.Catnip.Stack().Stats().GiveUps == 0 {
		t.Fatal("GiveUps counter never moved")
	}

	// Connecting to anyone across the dead link fails with
	// ErrConnectTimeout once the SYN budget is spent.
	qd2, err := cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(qd2, c.AddrOf(srv, 80)); !errors.Is(err, netstack.ErrConnectTimeout) {
		t.Fatalf("connect over partition: %v, want ErrConnectTimeout", err)
	}

	// Heal and verify a fresh connection works end to end.
	eng.LinkUp(0, c.Switch, cli.FabricPort())
	eng.Step()
	qd3, err := cli.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(qd3, c.AddrOf(srv, 80)); err != nil {
		t.Fatalf("post-heal connect: %v", err)
	}
	sqd2, err := srv.Accept(lqd)
	if err != nil {
		t.Fatalf("post-heal accept: %v", err)
	}
	echoOnce(t, cli, qd3, srv, sqd2, "back from the dead")
}

// TestChaosCatmintReconnect flaps the client's link and requires the
// catmint libOS to detect the dead peer, fail in-flight operations with
// typed errors, and redial the queue pair once the link heals — same
// endpoint, no application-level reconnect.
func TestChaosCatmintReconnect(t *testing.T) {
	c := NewCluster(302)
	srv := c.MustSpawn(Catmint, WithHost(1))
	cli := c.MustSpawn(Catmint, WithConfig(NodeConfig{
		Host: 2, OpTimeout: 10 * time.Millisecond,
		MaxReconnects: 40, ReconnectBackoff: time.Millisecond,
	}))
	cqd, lqd, sqd, cleanup := chaosConnect(t, c, cli, srv, 7)
	defer cleanup()
	echoOnce(t, cli, cqd, srv, sqd, "healthy before the flap")

	const downFor = 40 * time.Millisecond
	eng := chaos.New(302)
	eng.LinkFlap(0, downFor, c.Switch, cli.FabricPort())
	eng.Start()
	eng.Step() // fires link-down

	// The in-flight push can never complete; the dead-peer detector
	// must fail it with a typed error within the op timeout.
	qt, err := cli.Push(cqd, NewSGA([]byte("lost")))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cli.Wait(qt)
	if err != nil {
		t.Fatalf("wait during outage: %v", err)
	}
	if comp.Err == nil {
		t.Fatal("push across a dead link reported success")
	}
	if !typedErr(comp.Err) {
		t.Fatalf("push failed with untyped error: %v", comp.Err)
	}

	// While the redial is in flight, operations fail fast.
	qt2, err := cli.Push(cqd, NewSGA([]byte("still down")))
	if err == nil {
		if comp2, werr := cli.Wait(qt2); werr != nil || comp2.Err == nil || !typedErr(comp2.Err) {
			t.Fatalf("push during reconnect: err=%v comp.Err=%v", werr, comp2.Err)
		}
	}

	// Heal and let the redial land: keep pushing on the SAME client
	// descriptor until one push completes cleanly.
	for !eng.Done() {
		eng.Step()
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("the endpoint never recovered after the flap")
		}
		qt, err := cli.Push(cqd, NewSGA([]byte("recovered after the flap")))
		if err != nil {
			time.Sleep(time.Millisecond)
			continue
		}
		comp, werr := cli.Wait(qt)
		if werr != nil {
			continue
		}
		if comp.Err != nil {
			if !typedErr(comp.Err) {
				t.Fatalf("push during recovery failed with untyped error: %v", comp.Err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		break // delivered over the redialed queue pair
	}
	if cli.Catmint.Reconnects() == 0 {
		t.Fatal("no reconnect was ever attempted")
	}
	// The replacement connection surfaces at the server's listener; pop
	// the message that made it through (the outage pushes never left the
	// client, so the first delivery is the recovery marker).
	srv.WaitTimeout = time.Second
	var got string
	for got == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never saw the redialed connection's data")
		}
		sqd2, err := srv.Accept(lqd)
		if err != nil {
			continue
		}
		comp, err := srv.BlockingPop(sqd2)
		if err != nil || comp.Err != nil {
			continue // a stale child from a redial attempt; keep accepting
		}
		got = string(comp.SGA.Bytes())
		// Echo it back on the same (new) connection: full duplex works.
		if _, err := srv.BlockingPush(sqd2, comp.SGA); err != nil {
			t.Fatalf("server echo push: %v", err)
		}
	}
	if got != "recovered after the flap" {
		t.Fatalf("server popped %q after recovery", got)
	}
	back, err := cli.BlockingPop(cqd)
	if err != nil || back.Err != nil {
		t.Fatalf("client pop of the echo: %v %v", err, back.Err)
	}
	if string(back.SGA.Bytes()) != "recovered after the flap" {
		t.Fatalf("client got %q", back.SGA.Bytes())
	}
	_ = sqd
}

// TestChaosCatfishResetRetry injects an NVMe controller reset mid-stream:
// with the default budget the retry loop absorbs it invisibly; with the
// budget zeroed the application sees the typed device error.
func TestChaosCatfishResetRetry(t *testing.T) {
	c := NewCluster(303)
	node, err := c.Spawn(Catfish, WithBlocks(0))
	if err != nil {
		t.Fatal(err)
	}
	qd, err := node.Open("/wal")
	if err != nil {
		t.Fatal(err)
	}
	dev := node.Catfish.Device()

	// Reset absorbed by the retry budget.
	eng := chaos.New(303)
	eng.ControllerReset(0, dev, 3)
	eng.Start()
	eng.Step()
	comp, err := node.BlockingPush(qd, NewSGA([]byte("survives the reset")))
	if err != nil || comp.Err != nil {
		t.Fatalf("push across reset: %v %v", err, comp.Err)
	}
	if node.Catfish.Retries() == 0 {
		t.Fatal("reset fired but the retry loop never ran")
	}
	if dev.Stats().Resets != 1 {
		t.Fatalf("resets = %d, want 1", dev.Stats().Resets)
	}

	// With no retry budget the same fault becomes a typed failure.
	node.Catfish.SetRetryPolicy(0, time.Microsecond)
	eng.ControllerReset(0, dev, 5)
	eng.Step()
	comp, err = node.BlockingPush(qd, NewSGA([]byte("gives up")))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(comp.Err, spdk.ErrDeviceReset) {
		t.Fatalf("push with zero budget failed with %v, want ErrDeviceReset", comp.Err)
	}

	// Restore the budget: the stream is intact and appends resume.
	node.Catfish.SetRetryPolicy(8, 100*time.Microsecond)
	comp, err = node.BlockingPush(qd, NewSGA([]byte("resumes")))
	if err != nil || comp.Err != nil {
		t.Fatalf("push after restoring budget: %v %v", err, comp.Err)
	}
	for _, want := range []string{"survives the reset", "resumes"} {
		comp, err := node.BlockingPop(qd)
		if err != nil || comp.Err != nil {
			t.Fatalf("pop: %v %v", err, comp.Err)
		}
		if string(comp.SGA.Bytes()) != want {
			t.Fatalf("popped %q, want %q", comp.SGA.Bytes(), want)
		}
	}
}

// TestChaosPushdownResetMidTraversal resets the NVMe controller while a
// pushdown index traversal is in flight on the device. The contract: the
// application's Pop sees exactly one typed error completion (never a
// hang, never a partial value), the hop budget is accounted, and nothing
// leaks — no in-flight traversal, no pooled buffer.
func TestChaosPushdownResetMidTraversal(t *testing.T) {
	c := NewCluster(307)
	node, err := c.Spawn(Catfish, WithBlocks(0))
	if err != nil {
		t.Fatal(err)
	}
	tr := node.Catfish
	dev := tr.Device()

	var pairs []spdk.KV
	for i := 0; i < 64; i++ {
		pairs = append(pairs, spdk.KV{
			Key: []byte(fmt.Sprintf("user:%03d", i)),
			Val: []byte(fmt.Sprintf("profile-%d", i)),
		})
	}
	idx, err := tr.BuildIndex(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Depth < 4 {
		t.Fatalf("index depth = %d, want a deep traversal to interrupt", idx.Depth)
	}
	lq, err := tr.OpenLookup(idx, offload.IndexLookup(), catfish.LookupConfig{Pushdown: true})
	if err != nil {
		t.Fatal(err)
	}

	get := func(key string) (string, error) {
		s := tr.AllocSGA(len(key))
		copy(s.Segments[0].Buf, key)
		lq.Push(s, 0, func(queue.Completion) {})
		var res queue.Completion
		got := false
		lq.Pop(func(qc queue.Completion) { res = qc; got = true })
		for i := 0; !got; i++ {
			tr.Poll()
			if i > 100000 {
				t.Fatal("lookup hung — the one forbidden outcome")
			}
		}
		if res.Err != nil {
			return "", res.Err
		}
		v := string(res.SGA.Bytes())
		res.SGA.Free()
		return v, nil
	}

	// Healthy baseline.
	if v, err := get("user:031"); err != nil || v != "profile-31" {
		t.Fatalf("baseline get: %q, %v", v, err)
	}

	// Interrupt a traversal: push, advance two device-side hops, then
	// fire the reset on the chaos schedule while the next read is queued.
	s := tr.AllocSGA(8)
	copy(s.Segments[0].Buf, "user:031")
	lq.Push(s, 0, func(queue.Completion) {})
	dev.Pump()
	dev.Pump()
	if st := dev.PushdownStats(); st.Inflight != 1 {
		t.Fatalf("inflight = %d mid-traversal, want 1", st.Inflight)
	}
	eng := chaos.New(307)
	eng.ControllerReset(0, dev, 2)
	eng.Start()
	eng.Step()

	var res queue.Completion
	got := false
	lq.Pop(func(qc queue.Completion) { res = qc; got = true })
	for i := 0; !got; i++ {
		tr.Poll()
		if i > 100000 {
			t.Fatal("aborted traversal never surfaced its error completion")
		}
	}
	if !errors.Is(res.Err, spdk.ErrDeviceReset) {
		t.Fatalf("err = %v, want the typed ErrDeviceReset", res.Err)
	}
	st := dev.PushdownStats()
	if st.ResetAborts != 1 {
		t.Fatalf("reset_aborts = %d, want 1", st.ResetAborts)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after the abort, want 0 (leaked traversal)", st.Inflight)
	}

	// The controller re-initialises (downFor spends on the next
	// commands); lookups resume and hit the same index.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := get("user:031")
		if err == nil {
			if v != "profile-31" {
				t.Fatalf("post-reset value %q", v)
			}
			break
		}
		if !errors.Is(err, spdk.ErrDeviceReset) {
			t.Fatalf("post-reset lookup failed with %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("device never recovered")
		}
	}
	if out := tr.Pool().Outstanding(); out != 0 {
		t.Fatalf("%d pooled buffers leaked across the reset", out)
	}
	if st := dev.PushdownStats(); st.Inflight != 0 {
		t.Fatalf("inflight = %d at exit", st.Inflight)
	}
}
