// Package demikernel is a Go reproduction of the Demikernel, the
// library-OS architecture for kernel-bypass datacenter servers proposed
// in "I'm Not Dead Yet! The Role of the Operating System in a
// Kernel-Bypass Era" (Zhang et al., HotOS 2019).
//
// The Demikernel abstracts kernel-bypass I/O devices as I/O queues whose
// atomic element is a scatter-gather array. Applications push and pop
// whole elements, receive qtokens for outstanding operations, and collect
// completions with Wait, WaitAny, and WaitAll. Device differences are
// hidden behind library OSes: the same application runs unmodified over a
// simulated kernel socket path (catnap), a simulated DPDK NIC with a
// user-level TCP stack (catnip), a simulated RDMA NIC (catmint), and a
// simulated SPDK NVMe device (catfish).
//
// Because the real hardware is simulated, every device and protocol cost
// is charged explicitly from a documented cost model (package
// internal/simclock), making experiments deterministic. See DESIGN.md for
// the full substitution table and EXPERIMENTS.md for the reproduced
// results.
//
// # Quick start
//
//	cluster := demikernel.NewCluster(1)
//	server := cluster.NewCatnipNode(demikernel.NodeConfig{Host: 1})
//	client := cluster.NewCatnipNode(demikernel.NodeConfig{Host: 2})
//
//	// Server: socket / bind / listen / accept — Figure 3's control path.
//	sqd, _ := server.Socket()
//	server.Bind(sqd, demikernel.Addr{Port: 80})
//	server.Listen(sqd)
//
//	// Client connects and pushes one atomic element.
//	cqd, _ := client.Socket()
//	go client.Connect(cqd, cluster.AddrOf(server, 80))
//	conn, _ := server.Accept(sqd)
//	qt, _ := client.Push(cqd, demikernel.NewSGA([]byte("hi")))
//	client.Wait(qt)
//
//	// Server pops the whole element — never a fragment.
//	comp, _ := server.BlockingPop(conn)
package demikernel

import (
	"fmt"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/fabric"
	"demikernel/internal/kernel"
	"demikernel/internal/libos/catfish"
	"demikernel/internal/libos/catmint"
	"demikernel/internal/libos/catnap"
	"demikernel/internal/libos/catnip"
	"demikernel/internal/netstack"
	"demikernel/internal/nic"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/shard"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
	"demikernel/internal/telemetry"
)

// Re-exported core types: the Demikernel system-call surface (Figure 3).
type (
	// LibOS is one Demikernel library-OS instance.
	LibOS = core.LibOS
	// QD is a queue descriptor.
	QD = core.QD
	// Addr names a network endpoint.
	Addr = core.Addr
	// Features is the Table 1 hardware/software feature split.
	Features = core.Features
	// QToken identifies one outstanding queue operation.
	QToken = queue.QToken
	// Completion is the result of one queue operation.
	Completion = queue.Completion
	// SGA is a scatter-gather array, the atomic queue element.
	SGA = sga.SGA
	// CostModel is the virtual cost model behind all simulated devices.
	CostModel = simclock.CostModel
	// Lat is a virtual latency in nanoseconds.
	Lat = simclock.Lat
)

// Re-exported errors.
var (
	ErrBadQD        = core.ErrBadQD
	ErrNotSupported = core.ErrNotSupported
	ErrTimeout      = core.ErrTimeout
	// ErrWaitTimeout is the sentinel wrapped by every Wait/Accept/Connect
	// deadline error; match it with errors.Is.
	ErrWaitTimeout = core.ErrWaitTimeout
)

// NewSGA builds a scatter-gather array over the given segments without
// copying them.
func NewSGA(segs ...[]byte) SGA { return sga.New(segs...) }

// Cluster is a simulated rack: one fabric switch plus the cost model, to
// which nodes running different library OSes attach. It exists so that
// examples and experiments can build multi-host worlds in a few lines.
type Cluster struct {
	Model  CostModel
	Switch *fabric.Switch

	nodes        []*Node
	shardedNodes []*ShardedNode
}

// Node binds a LibOS to its simulated host identity on the cluster.
type Node struct {
	*LibOS
	MAC fabric.MAC
	IP  netstack.IPv4Addr

	// Kernel is non-nil on catnap nodes (for counters).
	Kernel *kernel.Kernel
	// Catnip is non-nil on catnip nodes (for device/stack access).
	Catnip *catnip.Transport
	// Catmint is non-nil on catmint nodes.
	Catmint *catmint.Transport
	// Catfish is non-nil on catfish nodes.
	Catfish *catfish.Transport
}

// NodeConfig identifies a host within a cluster.
type NodeConfig struct {
	// Host is a small integer naming the host; it determines the
	// node's MAC (02:00:00:00:00:<host>) and IP (10.0.0.<host>).
	Host byte
	// PerPacketExtra adds processing cost to every packet on this
	// node's stack (used to model mTCP-style POSIX emulation, §6).
	PerPacketExtra Lat
	// PostedRecvs overrides the RDMA receive window (catmint only).
	PostedRecvs int

	// MemCapacity caps the catnip node's pinned-memory bytes; staging a
	// push beyond it fails with membuf.ErrNoMem (catnip only, 0 =
	// unbounded).
	MemCapacity int64
	// RTO overrides the user TCP stack's initial retransmission timeout
	// (catnip only; chaos tests shorten it).
	RTO time.Duration
	// MaxRetransmits overrides the TCP give-up budget (catnip only).
	MaxRetransmits int

	// OpTimeout bounds how long an RDMA operation may stay in flight
	// before the peer is declared dead (catmint only; negative
	// disables).
	OpTimeout time.Duration
	// MaxReconnects bounds QP redial attempts after a QP error
	// (catmint only).
	MaxReconnects int
	// ReconnectBackoff is the first QP redial delay; it doubles per
	// attempt (catmint only).
	ReconnectBackoff time.Duration
}

// NewCluster creates a cluster with deterministic fault injection seeded
// by seed.
func NewCluster(seed int64) *Cluster {
	return NewClusterWithModel(seed, simclock.Datacenter2019())
}

// NewClusterWithModel creates a cluster charging costs from a custom cost
// model — the hook the ablation experiments use to sweep individual cost
// parameters (syscall price, copy bandwidth, ...).
func NewClusterWithModel(seed int64, model CostModel) *Cluster {
	c := &Cluster{Model: model}
	c.Switch = fabric.NewSwitch(&c.Model, seed)
	return c
}

func (c *Cluster) mac(host byte) fabric.MAC {
	return fabric.MAC{0x02, 0, 0, 0, 0, host}
}

func (c *Cluster) ip(host byte) netstack.IPv4Addr {
	return netstack.IP(10, 0, 0, host)
}

func (c *Cluster) newKernelNIC(host byte) *nic.Device {
	return nic.New(&c.Model, c.Switch, nic.Config{MAC: c.mac(host)})
}

// NewCatnipNode attaches a DPDK-libOS node: simulated NIC + user-level
// TCP stack + transparent memory registration.
func (c *Cluster) NewCatnipNode(cfg NodeConfig) *Node {
	t := catnip.New(&c.Model, c.Switch, catnip.Config{
		MAC:            c.mac(cfg.Host),
		IP:             c.ip(cfg.Host),
		PerPacketExtra: cfg.PerPacketExtra,
		MemCapacity:    cfg.MemCapacity,
		RTO:            cfg.RTO,
		MaxRetransmits: cfg.MaxRetransmits,
	})
	n := &Node{
		LibOS:  core.New(t, &c.Model),
		MAC:    c.mac(cfg.Host),
		IP:     c.ip(cfg.Host),
		Catnip: t,
	}
	c.nodes = append(c.nodes, n)
	return n
}

// NewCatnapNode attaches a kernel-libOS node: same wire, but every I/O
// pays the legacy kernel costs.
func (c *Cluster) NewCatnapNode(cfg NodeConfig) *Node {
	dev := c.newKernelNIC(cfg.Host)
	k := kernel.New(&c.Model, dev, c.ip(cfg.Host))
	t := catnap.New(&c.Model, k)
	n := &Node{
		LibOS:  core.New(t, &c.Model),
		MAC:    c.mac(cfg.Host),
		IP:     c.ip(cfg.Host),
		Kernel: k,
	}
	c.nodes = append(c.nodes, n)
	return n
}

// NewCatmintNode attaches an RDMA-libOS node.
func (c *Cluster) NewCatmintNode(cfg NodeConfig) *Node {
	t := catmint.New(&c.Model, c.Switch, catmint.Config{
		MAC:              c.mac(cfg.Host),
		PostedRecvs:      cfg.PostedRecvs,
		OpTimeout:        cfg.OpTimeout,
		MaxReconnects:    cfg.MaxReconnects,
		ReconnectBackoff: cfg.ReconnectBackoff,
	})
	n := &Node{
		LibOS:   core.New(t, &c.Model),
		MAC:     c.mac(cfg.Host),
		IP:      c.ip(cfg.Host),
		Catmint: t,
	}
	c.nodes = append(c.nodes, n)
	return n
}

// NewCatfishNode attaches a storage-libOS node over a fresh simulated
// NVMe namespace with the given capacity in blocks (0 for the default).
func (c *Cluster) NewCatfishNode(numBlocks int) (*Node, error) {
	dev := spdk.New(&c.Model, spdk.Config{NumBlocks: numBlocks})
	return c.newCatfishOn(dev)
}

// NewCatfishNodeOn attaches a storage-libOS node to an existing device,
// recovering any log it carries (restart scenarios).
func (c *Cluster) NewCatfishNodeOn(dev *spdk.Device) (*Node, error) {
	return c.newCatfishOn(dev)
}

func (c *Cluster) newCatfishOn(dev *spdk.Device) (*Node, error) {
	t, err := catfish.New(&c.Model, dev)
	if err != nil {
		return nil, err
	}
	n := &Node{LibOS: core.New(t, &c.Model), Catfish: t}
	c.nodes = append(c.nodes, n)
	return n, nil
}

// ShardedNode is an N-shard catnip host: one NIC (with N RSS receive
// queues), one MAC, one IP — and N fully independent libOS shards, each
// owning one queue, one netstack, one memory manager, and one frame
// pool. Libs[i] is shard i's complete Demikernel syscall surface; the
// Mesh carries the rare cross-shard traffic.
type ShardedNode struct {
	Set  *catnip.ShardSet
	Libs []*LibOS
	MAC  fabric.MAC
	IP   netstack.IPv4Addr
}

// NewShardedCatnipNode attaches a sharded catnip host with the given
// shard count — the paper's §3.1 scale-out shape: "flow-level
// parallelism... partition[s] connections across cores".
func (c *Cluster) NewShardedCatnipNode(cfg NodeConfig, shards int) *ShardedNode {
	set := catnip.NewSharded(&c.Model, c.Switch, catnip.Config{
		MAC:            c.mac(cfg.Host),
		IP:             c.ip(cfg.Host),
		PerPacketExtra: cfg.PerPacketExtra,
		MemCapacity:    cfg.MemCapacity,
		RTO:            cfg.RTO,
		MaxRetransmits: cfg.MaxRetransmits,
	}, shards)
	n := &ShardedNode{Set: set, MAC: c.mac(cfg.Host), IP: c.ip(cfg.Host)}
	for i := 0; i < shards; i++ {
		n.Libs = append(n.Libs, core.New(set.Shard(i), &c.Model))
	}
	c.shardedNodes = append(c.shardedNodes, n)
	return n
}

// Size returns the shard count.
func (n *ShardedNode) Size() int { return len(n.Libs) }

// Mesh returns the cross-shard SPSC message mesh.
func (n *ShardedNode) Mesh() *shard.Group { return n.Set.Mesh() }

// Poll pumps every shard's data path once.
func (n *ShardedNode) Poll() int {
	total := 0
	for _, l := range n.Libs {
		total += l.Poll()
	}
	return total
}

// Background starts one polling goroutine per shard (a deployment pins
// one per core) and returns a function stopping them all.
func (n *ShardedNode) Background() (stop func()) {
	stops := make([]func(), 0, len(n.Libs))
	for _, l := range n.Libs {
		stops = append(stops, l.Background())
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// FabricPort returns the switch port of the sharded node's NIC (for
// chaos schedules).
func (n *ShardedNode) FabricPort() int { return n.Set.Device().PortID() }

// RegisterTelemetry lifts the whole sharded vertical into a registry:
// the shared NIC under prefix.nic, each shard's stack/membuf/completer
// under prefix.shard.<i>.*, and the mesh counters as
// prefix.shard.<i>.xs_*.
func (n *ShardedNode) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	n.Set.RegisterTelemetry(r, prefix)
	for i, l := range n.Libs {
		l.Completer().RegisterTelemetry(r, fmt.Sprintf("%s.shard.%d.completer", prefix, i))
	}
}

// DialToShard connects a plain catnip client node to one specific shard
// of a sharded peer: it searches the ephemeral port range for a source
// port whose RSS hash (as computed by the server NIC over the inbound
// flow) selects the target queue, then dials from that port. seed
// staggers the search start so concurrent dialers pick distinct ports.
// The caller must keep the server side polling (Background) for the
// handshake to complete.
func (c *Cluster) DialToShard(client *Node, srv *ShardedNode, port uint16, target int, seed uint16) (QD, error) {
	sp := catnip.SourcePortFor(client.IP, srv.IP, port, srv.Size(), target, seed)
	ep, err := client.Catnip.SocketFrom(sp)
	if err != nil {
		return core.InvalidQD, err
	}
	qd := client.LibOS.AdoptEndpoint(ep)
	if err := client.LibOS.Connect(qd, Addr{IP: srv.IP, MAC: srv.MAC, Port: port}); err != nil {
		client.LibOS.Close(qd)
		return core.InvalidQD, err
	}
	return qd, nil
}

// FabricPort returns the switch port ID the node's NIC is attached to
// (catnip and catmint nodes only; -1 otherwise). Chaos schedules use it
// to target link faults at one host.
func (n *Node) FabricPort() int {
	switch {
	case n.Catnip != nil:
		return n.Catnip.Device().PortID()
	case n.Catmint != nil:
		return n.Catmint.Device().PortID()
	}
	return -1
}

// AddrOf returns the address of node's port, usable from any libOS.
func (c *Cluster) AddrOf(n *Node, port uint16) Addr {
	return Addr{IP: n.IP, MAC: n.MAC, Port: port}
}

// Poll pumps every node's data path once (tests and single-threaded
// drivers use it instead of per-node polling).
func (c *Cluster) Poll() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Poll()
	}
	for _, n := range c.shardedNodes {
		total += n.Poll()
	}
	return total
}

// NewDisk creates a standalone simulated NVMe device on this cluster's
// cost model (for kernel-file-system baselines and restarts).
func (c *Cluster) NewDisk(numBlocks int) *spdk.Device {
	return spdk.New(&c.Model, spdk.Config{NumBlocks: numBlocks})
}

// String summarises the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{%d nodes}", len(c.nodes))
}
