// storage: Demikernel file queues over the SPDK-class device (§5.3).
// Pushes are durable appends into the accelerator-specific log layout;
// a "restart" (a fresh libOS over the same device) recovers everything,
// including scatter-gather segmentation.
package main

import (
	"fmt"
	"log"

	demi "demikernel"
)

func main() {
	cluster := demi.NewCluster(5)
	disk := cluster.NewDisk(0) // a simulated NVMe namespace

	// First boot: write a tiny write-ahead log.
	node, err := cluster.Spawn(demi.Catfish, demi.WithDisk(disk))
	if err != nil {
		log.Fatal(err)
	}
	wal, err := node.Open("/wal/orders")
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		rec := demi.NewSGA(
			[]byte(fmt.Sprintf("order-%d", i)), // header segment
			[]byte("payload"),                  // body segment
		)
		comp, err := node.BlockingPush(wal, rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("appended order-%d durably (device cost %v)\n", i, comp.Cost)
	}

	// "Restart": a brand-new libOS instance on the same device. The
	// log-structured store rebuilds its index by scanning the log.
	node2, err := cluster.Spawn(demi.Catfish, demi.WithDisk(disk))
	if err != nil {
		log.Fatal(err)
	}
	wal2, err := node2.Open("/wal/orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after restart, replaying the log:")
	for i := 0; i < 3; i++ {
		comp, err := node2.BlockingPop(wal2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d segments: %q + %q\n", comp.SGA.NumSegments(),
			comp.SGA.Segments[0].Buf, comp.SGA.Segments[1].Buf)
	}
	fmt.Printf("device stats: %+v\n", node2.Catfish.Device().Stats())
}
