package catfish_test

import (
	"errors"
	"testing"
	"time"

	demi "demikernel"
	"demikernel/internal/core"
)

func node(t *testing.T, seed int64) (*demi.Cluster, *demi.Node) {
	t.Helper()
	c := demi.NewCluster(seed)
	n, err := c.Spawn(demi.Catfish, demi.WithBlocks(0))
	if err != nil {
		t.Fatal(err)
	}
	return c, n
}

func TestSocketNotSupported(t *testing.T) {
	_, n := node(t, 71)
	if _, err := n.Socket(); !errors.Is(err, core.ErrNotSupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestPopWaitsForAppend(t *testing.T) {
	_, n := node(t, 72)
	qd, err := n.Open("/q")
	if err != nil {
		t.Fatal(err)
	}
	qt, err := n.Pop(qd)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing yet.
	if _, ok, _ := n.TryWait(qt); ok {
		t.Fatal("pop completed on empty file")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		comp, err := n.Wait(qt)
		if err != nil || string(comp.SGA.Bytes()) != "arrives later" {
			t.Errorf("wait: %v %v", comp, err)
		}
	}()
	time.Sleep(time.Millisecond)
	if _, err := n.BlockingPush(qd, demi.NewSGA([]byte("arrives later"))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never served")
	}
}

func TestIndependentCursorsPerOpen(t *testing.T) {
	// Each Open returns a fresh read cursor over the same durable
	// record stream.
	_, n := node(t, 73)
	q1, _ := n.Open("/shared")
	n.BlockingPush(q1, demi.NewSGA([]byte("r0")))
	n.BlockingPush(q1, demi.NewSGA([]byte("r1")))
	if comp, _ := n.BlockingPop(q1); string(comp.SGA.Bytes()) != "r0" {
		t.Fatalf("q1 pop = %q", comp.SGA.Bytes())
	}
	q2, _ := n.Open("/shared")
	if comp, _ := n.BlockingPop(q2); string(comp.SGA.Bytes()) != "r0" {
		t.Fatalf("fresh cursor should start at record 0")
	}
	if comp, _ := n.BlockingPop(q1); string(comp.SGA.Bytes()) != "r1" {
		t.Fatal("q1 cursor disturbed by q2")
	}
}

func TestPushAfterCloseFails(t *testing.T) {
	_, n := node(t, 74)
	qd, _ := n.Open("/q")
	if err := n.Close(qd); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Push(qd, demi.NewSGA([]byte("x"))); err == nil {
		t.Fatal("push on closed descriptor succeeded")
	}
}

func TestCloseFailsOutstandingPop(t *testing.T) {
	_, n := node(t, 75)
	qd, _ := n.Open("/q")
	qt, _ := n.Pop(qd)
	n.Close(qd)
	comp, err := n.Wait(qt)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Err == nil {
		t.Fatal("outstanding pop must fail on close")
	}
}

func TestDurableCostsCharged(t *testing.T) {
	_, n := node(t, 76)
	qd, _ := n.Open("/q")
	comp, err := n.BlockingPush(qd, demi.NewSGA(make([]byte, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if comp.Cost == 0 {
		t.Fatal("durable append must charge device cost")
	}
	got, err := n.BlockingPop(qd)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost == 0 {
		t.Fatal("device read must charge cost")
	}
}

func TestManyFilesInterleaved(t *testing.T) {
	_, n := node(t, 77)
	var qds []demi.QD
	for i := 0; i < 8; i++ {
		qd, err := n.Open(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		qds = append(qds, qd)
	}
	for round := 0; round < 5; round++ {
		for i, qd := range qds {
			payload := []byte{byte(i), byte(round)}
			if _, err := n.BlockingPush(qd, demi.NewSGA(payload)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, qd := range qds {
		for round := 0; round < 5; round++ {
			comp, err := n.BlockingPop(qd)
			if err != nil {
				t.Fatal(err)
			}
			b := comp.SGA.Bytes()
			if b[0] != byte(i) || b[1] != byte(round) {
				t.Fatalf("file %d round %d: got %v", i, round, b)
			}
		}
	}
}
