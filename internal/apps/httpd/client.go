package httpd

// The HTTP client side: a keep-alive connection issuing GET/HEAD
// requests, with three request disciplines layered over the same
// parser — one-at-a-time (Get), pipelined-in-one-push (GetPipelined,
// which exercises the server's multiple-requests-per-pop parse loop),
// and ring batches (GetBatch, the syscall-free path). SendRequest /
// ReadResponse are split out so a workload rig can model a slow reader:
// keep sending, refuse to read, and let TCP backpressure build.

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/uring"
)

// ErrRingDisabled is returned by ring-path calls before EnableRing.
var ErrRingDisabled = errors.New("httpd: ring mode not enabled")

// Response is one parsed HTTP response.
type Response struct {
	Status int
	Body   []byte // copied out of the popped SGA
	Close  bool   // server announced Connection: close
	Cost   simclock.Lat
}

// Client issues requests over one keep-alive connection.
type Client struct {
	lib  *core.LibOS
	qd   core.QD
	addr core.Addr
	req  []byte // reused request-build buffer
	pol  *failover.Policy

	reconnects atomic.Int64
	replays    atomic.Int64

	// Ring-path state (nil until EnableRing).
	ring    *uring.Pair
	rsqes   []uring.SQE
	rcqes   []uring.CQE
	ringGen uint64
	breqs   [][]byte         // per-slot request bytes, alive until push CQEs
	bsegs   [][1]sga.Segment // per-slot segment arrays backing the SGAs
}

// NewClient creates a client on lib.
func NewClient(lib *core.LibOS) *Client { return &Client{lib: lib} }

// Connect dials the server and remembers the address for redials.
func (c *Client) Connect(addr core.Addr) error {
	qd, err := c.lib.Socket()
	if err != nil {
		return err
	}
	if err := c.lib.Connect(qd, addr); err != nil {
		return err
	}
	c.qd = qd
	c.addr = addr
	return nil
}

// Adopt takes over an already-connected descriptor (DialToShard flows).
func (c *Client) Adopt(qd core.QD, addr core.Addr) {
	c.qd = qd
	c.addr = addr
}

// QD exposes the connection descriptor.
func (c *Client) QD() core.QD { return c.qd }

// Close shuts the connection.
func (c *Client) Close() error { return c.lib.Close(c.qd) }

// EnableFailover arms redial-and-replay with pol (GETs are idempotent).
func (c *Client) EnableFailover(pol failover.Policy) { c.pol = &pol }

// FailoverStats reports redials and replays performed so far.
func (c *Client) FailoverStats() (reconnects, replays int64) {
	return c.reconnects.Load(), c.replays.Load()
}

// appendRequest serializes one request into dst.
func appendRequest(dst []byte, path string, head, connClose bool, rangeSpec string) []byte {
	if head {
		dst = append(dst, "HEAD "...)
	} else {
		dst = append(dst, "GET "...)
	}
	dst = append(dst, path...)
	dst = append(dst, " HTTP/1.1\r\nHost: demi\r\n"...)
	if connClose {
		dst = append(dst, "Connection: close\r\n"...)
	}
	if rangeSpec != "" {
		dst = append(dst, "Range: "...)
		dst = append(dst, rangeSpec...)
		dst = append(dst, '\r', '\n')
	}
	return append(dst, '\r', '\n')
}

// SendRequest pushes one request without reading the response — the
// slow-reader half; pair with ReadResponse.
func (c *Client) SendRequest(path string, connClose bool) error {
	return c.send(path, false, connClose, "")
}

// SendHead pushes one HEAD request without reading the response.
func (c *Client) SendHead(path string) error { return c.send(path, true, false, "") }

// SendRange pushes one ranged GET without reading the response.
func (c *Client) SendRange(path, rangeSpec string) error {
	return c.send(path, false, false, rangeSpec)
}

func (c *Client) send(path string, head, connClose bool, rangeSpec string) error {
	c.req = appendRequest(c.req[:0], path, head, connClose, rangeSpec)
	qt, err := c.lib.PushCost(c.qd, sga.New(c.req), 0)
	if err != nil {
		return err
	}
	comp, err := c.lib.Wait(qt)
	if err != nil {
		return err
	}
	return comp.Err
}

// ReadResponse blocks for the next response and parses it.
func (c *Client) ReadResponse() (Response, error) { return c.readResponse(false) }

// ReadHeadResponse is ReadResponse for a HEAD request's reply, whose
// Content-Length describes the body it deliberately does not carry.
func (c *Client) ReadHeadResponse() (Response, error) { return c.readResponse(true) }

func (c *Client) readResponse(head bool) (Response, error) {
	comp, err := c.lib.BlockingPop(c.qd)
	if err != nil {
		return Response{}, err
	}
	if comp.Err != nil {
		return Response{}, comp.Err
	}
	defer comp.SGA.Free()
	resp, err := parseResponseSGA(comp.SGA, head)
	resp.Cost = comp.Cost
	return resp, err
}

// Get issues one GET and reads its response; under an armed failover
// policy a dead peer triggers backoff, redial, and replay.
func (c *Client) Get(path string) (Response, error) {
	return c.roundTrip(path, false, false, "")
}

// Head issues one HEAD request.
func (c *Client) Head(path string) (Response, error) {
	return c.roundTrip(path, true, false, "")
}

// GetClose issues a GET with Connection: close.
func (c *Client) GetClose(path string) (Response, error) {
	return c.roundTrip(path, false, true, "")
}

// GetRange issues a ranged GET (rangeSpec like "bytes=0-99").
func (c *Client) GetRange(path, rangeSpec string) (Response, error) {
	return c.roundTrip(path, false, false, rangeSpec)
}

func (c *Client) roundTrip(path string, head, connClose bool, rangeSpec string) (Response, error) {
	resp, err := c.attempt(path, head, connClose, rangeSpec)
	if err == nil || c.pol == nil || !failover.Retriable(err) {
		return resp, err
	}
	bo := failover.NewBackoff(*c.pol)
	for {
		d, ok := bo.Next()
		if !ok {
			return Response{}, err
		}
		time.Sleep(d)
		if rerr := c.redial(); rerr != nil {
			if failover.Retriable(rerr) {
				err = rerr
				continue
			}
			return Response{}, rerr
		}
		c.reconnects.Add(1)
		c.replays.Add(1)
		resp, err = c.attempt(path, head, connClose, rangeSpec)
		if err == nil || !failover.Retriable(err) {
			return resp, err
		}
	}
}

func (c *Client) attempt(path string, head, connClose bool, rangeSpec string) (Response, error) {
	if err := c.send(path, head, connClose, rangeSpec); err != nil {
		return Response{}, err
	}
	return c.readResponse(head)
}

// redial abandons the dead connection and dials the saved address anew.
// Dial-first, close-second: a failed redial must leave the old (dead
// but valid) QD in place so subsequent errors stay typed and retriable.
func (c *Client) redial() error {
	qd, err := c.lib.Socket()
	if err != nil {
		return err
	}
	if err := c.lib.Connect(qd, c.addr); err != nil {
		c.lib.Close(qd) //nolint:errcheck
		return err
	}
	c.lib.Close(c.qd) //nolint:errcheck // the old QD is already dead
	c.qd = qd
	return nil
}

// GetPipelined concatenates all requests into ONE push — the wire shape
// of an aggressive pipelining client — then reads one response per
// request. The server must parse multiple requests out of a single
// popped SGA for this to come back complete.
func (c *Client) GetPipelined(paths []string) ([]Response, error) {
	c.req = c.req[:0]
	for _, p := range paths {
		c.req = appendRequest(c.req, p, false, false, "")
	}
	qt, err := c.lib.PushCost(c.qd, sga.New(c.req), 0)
	if err != nil {
		return nil, err
	}
	comp, err := c.lib.Wait(qt)
	if err != nil {
		return nil, err
	}
	if comp.Err != nil {
		return nil, comp.Err
	}
	out := make([]Response, 0, len(paths))
	for range paths {
		resp, err := c.ReadResponse()
		if err != nil {
			return out, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// parseResponseSGA parses a popped response SGA: the head must sit in
// the first segment (the server pushes header and body as separate
// segments and framing preserves them); body segments are copied out.
// isHead relaxes the Content-Length check — a HEAD reply announces the
// body it does not carry.
func parseResponseSGA(g sga.SGA, isHead bool) (Response, error) {
	if len(g.Segments) == 0 {
		return Response{}, fmt.Errorf("httpd: empty response")
	}
	head := g.Segments[0].Buf
	status, contentLen, connClose, err := parseResponseHead(head)
	if err != nil {
		return Response{}, err
	}
	resp := Response{Status: status, Close: connClose}
	if contentLen > 0 && !isHead {
		resp.Body = make([]byte, 0, contentLen)
		for _, seg := range g.Segments[1:] {
			resp.Body = append(resp.Body, seg.Buf...)
		}
		if int64(len(resp.Body)) != contentLen {
			return resp, fmt.Errorf("httpd: body %d bytes, Content-Length %d",
				len(resp.Body), contentLen)
		}
	}
	return resp, nil
}

// parseResponseHead parses the status line and the response headers the
// client cares about. contentLen is -1 when absent.
func parseResponseHead(head []byte) (status int, contentLen int64, connClose bool, err error) {
	end := bytes.Index(head, crlf2)
	if end < 0 {
		return 0, 0, false, fmt.Errorf("httpd: truncated response head")
	}
	head = head[:end]
	eol := bytes.IndexByte(head, '\r')
	if eol < 0 {
		eol = len(head)
	}
	line := head[:eol]
	if len(line) < len("HTTP/1.1 200") || !bytes.HasPrefix(line, []byte("HTTP/1.1 ")) {
		return 0, 0, false, fmt.Errorf("httpd: malformed status line")
	}
	code, ok := parseDecimal(line[len("HTTP/1.1 ") : len("HTTP/1.1 ")+3])
	if !ok {
		return 0, 0, false, fmt.Errorf("httpd: malformed status code")
	}
	contentLen = -1
	rest := head[eol:]
	for len(rest) > 0 {
		if bytes.HasPrefix(rest, []byte("\r\n")) {
			rest = rest[2:]
			continue
		}
		nl := bytes.IndexByte(rest, '\r')
		var line []byte
		if nl < 0 {
			line, rest = rest, nil
		} else {
			line, rest = rest[:nl], rest[nl:]
		}
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		name, val := line[:colon], trimSpaces(line[colon+1:])
		switch {
		case foldEq(name, "content-length"):
			if n, ok := parseDecimal(val); ok {
				contentLen = n
			}
		case foldEq(name, "connection"):
			connClose = foldEq(val, "close")
		}
	}
	return int(code), contentLen, connClose, nil
}

// EnableRing switches the client onto an SQ/CQ ring pair of the given
// capacity. Batched round trips are issued with GetBatch; the legacy
// per-op path keeps working (and keeps its failover loop) alongside.
func (c *Client) EnableRing(capacity int) {
	c.ring = c.lib.AttachRing(capacity)
	c.rsqes = make([]uring.SQE, 0, c.ring.Cap())
	c.rcqes = make([]uring.CQE, c.ring.Cap())
}

// Ring returns the client's ring pair (nil before EnableRing).
func (c *Client) Ring() *uring.Pair { return c.ring }

// GetBatch issues len(paths) pipelined GETs through the ring — pushes
// and pops posted up front, completions harvested as they land — and
// returns how many responses came back 2xx plus the mean virtual
// round-trip cost. Bodies are validated against Content-Length and
// discarded without copying, so the steady-state path allocates
// nothing once the per-slot buffers are warm.
func (c *Client) GetBatch(paths []string, appCost simclock.Lat) (ok2xx int, mean simclock.Lat, err error) {
	if c.ring == nil {
		return 0, 0, ErrRingDisabled
	}
	batch := len(paths)
	if batch < 1 || 2*batch > c.ring.Cap() {
		return 0, 0, errors.New("httpd: batch out of range for ring capacity")
	}
	for len(c.breqs) < batch {
		c.breqs = append(c.breqs, nil)
		c.bsegs = append(c.bsegs, [1]sga.Segment{})
	}
	c.ringGen++
	gen := c.ringGen << 32

	sq := c.rsqes[:0]
	for i, p := range paths {
		c.breqs[i] = appendRequest(c.breqs[i][:0], p, false, false, "")
		c.bsegs[i][0] = sga.Segment{Buf: c.breqs[i]}
		sq = append(sq,
			uring.SQE{Op: queue.OpPush, QD: int32(c.qd), Tag: gen | uint64(i)<<1 | 1,
				SGA: sga.SGA{Segments: c.bsegs[i][:1]}, Cost: appCost},
			uring.SQE{Op: queue.OpPop, QD: int32(c.qd), Tag: gen | uint64(i)<<1})
	}
	want := len(sq)
	got, pops := 0, 0
	var total simclock.Lat
	var firstErr error
	for got < want {
		if len(sq) > 0 {
			n, err := c.lib.SubmitBatch(c.ring, sq)
			if err != nil {
				return 0, 0, err
			}
			sq = sq[n:]
		}
		n, err := c.lib.WaitAnyRing(c.ring, c.rcqes, time.Time{})
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < n; i++ {
			cq := &c.rcqes[i]
			if cq.Tag&^uint64(0xffffffff) != gen {
				cq.SGA.Free() // straggler from an abandoned earlier batch
				*cq = uring.CQE{}
				continue
			}
			got++
			if cq.Err != nil {
				if firstErr == nil {
					firstErr = cq.Err
				}
			} else if cq.Kind == queue.OpPop {
				if status, bodyLen, perr := checkResponseSGA(cq.SGA); perr != nil {
					if firstErr == nil {
						firstErr = perr
					}
				} else if status >= 200 && status < 300 && bodyLen >= 0 {
					ok2xx++
					total += cq.Cost
					pops++
				}
				cq.SGA.Free()
			}
			*cq = uring.CQE{}
		}
	}
	c.rsqes = c.rsqes[:0]
	if firstErr != nil {
		return ok2xx, 0, firstErr
	}
	if pops == 0 {
		return 0, 0, nil
	}
	return ok2xx, total / simclock.Lat(pops), nil
}

// checkResponseSGA validates a response in place without copying the
// body out.
func checkResponseSGA(g sga.SGA) (status int, bodyLen int64, err error) {
	if len(g.Segments) == 0 {
		return 0, 0, fmt.Errorf("httpd: empty response")
	}
	status, contentLen, _, err := parseResponseHead(g.Segments[0].Buf)
	if err != nil {
		return 0, 0, err
	}
	for _, seg := range g.Segments[1:] {
		bodyLen += int64(len(seg.Buf))
	}
	if contentLen >= 0 && bodyLen != contentLen {
		return status, bodyLen, fmt.Errorf("httpd: body %d bytes, Content-Length %d",
			bodyLen, contentLen)
	}
	return status, bodyLen, nil
}
