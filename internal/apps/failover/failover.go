// Package failover is the client-side half of surviving a server death
// in a kernel-bypass world. The paper's §3 observation cuts both ways:
// when a bypass server crashes, the kernel sends no FIN and no RST on
// its behalf — the peer's first signal is its own retransmission budget
// expiring with a typed error. A client that wants availability must
// therefore supply what the OS used to: detect the death (typed errors,
// never hangs), back off with jitter so a thousand rebuffed clients do
// not stampede the reborn server, redial, and replay the idempotent
// operation that was in flight.
//
// The package is deliberately tiny and application-agnostic: a Policy
// (how many attempts, how the backoff grows, how much jitter), a
// Backoff iterator seeded for reproducible chaos runs, and Retriable —
// the single predicate deciding whether an error means "the peer died,
// try again" versus "the request itself is wrong, give up".
package failover

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/queue"
)

// Policy configures redial-and-replay behavior.
type Policy struct {
	// MaxAttempts bounds redial attempts per operation; 0 disables
	// failover entirely (errors surface to the caller unchanged).
	MaxAttempts int
	// Base is the first backoff delay; it doubles per attempt.
	Base time.Duration
	// Max caps the grown backoff.
	Max time.Duration
	// Jitter in [0,1] randomizes each delay within ±Jitter/2 of itself,
	// decorrelating reconnect storms (a cluster of clients rebuffed by
	// the same crash must not retry in lockstep).
	Jitter float64
	// Seed drives the jitter; chaos tests pin it for reproducibility.
	Seed int64
}

// DefaultPolicy is tuned for the simulator's compressed timescales:
// enough attempts to ride out a multi-RTO outage, millisecond backoffs.
func DefaultPolicy() Policy {
	return Policy{MaxAttempts: 25, Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.5, Seed: 1}
}

// Backoff iterates a policy's jittered exponential delays. Safe for use
// by one operation at a time; create one per retry loop (Reset reuses).
type Backoff struct {
	pol     Policy
	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a fresh iterator over pol's delays.
func NewBackoff(pol Policy) *Backoff {
	return &Backoff{pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// Next returns the next delay and true, or 0 and false once the
// policy's attempts are exhausted.
func (b *Backoff) Next() (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.attempt >= b.pol.MaxAttempts {
		return 0, false
	}
	// Clamp the shift so a long retry campaign cannot overflow the
	// doubling into a negative (and therefore cap-evading) duration.
	shift := uint(b.attempt)
	if shift > 30 {
		shift = 30
	}
	d := b.pol.Base << shift
	if b.pol.Max > 0 && (d > b.pol.Max || d <= 0) {
		d = b.pol.Max
	}
	if b.pol.Jitter > 0 {
		// Scale into [1-J/2, 1+J/2): full decorrelation without ever
		// collapsing the delay to zero.
		f := 1 + b.pol.Jitter*(b.rng.Float64()-0.5)
		d = time.Duration(float64(d) * f)
	}
	b.attempt++
	return d, true
}

// Attempts reports how many delays have been handed out since Reset.
func (b *Backoff) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset rewinds the iterator (a successful operation forgives history).
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Retriable reports whether err signals a dead, reset, or silent peer —
// the class of failures a redial-and-replay can cure. ErrWaitTimeout is
// included deliberately: when a bypass server dies after ACKing the
// request but before responding, the client's TCP layer has nothing in
// flight to retransmit and so never detects the death — the wait
// deadline expiring is the only liveness signal left, and replaying an
// idempotent operation against a merely-slow server is harmless.
// Application-level errors (malformed request, server ER status) and
// programming errors (bad QD) are not retriable: replaying them
// reproduces them.
func Retriable(err error) bool {
	return err != nil && (errors.Is(err, core.ErrPeerDead) ||
		errors.Is(err, core.ErrLocalReset) ||
		errors.Is(err, core.ErrWaitTimeout) ||
		errors.Is(err, queue.ErrClosed))
}
