// Package spdk simulates an SPDK-class kernel-bypass NVMe device (Table 1,
// left column of the paper, storage side): a namespace of fixed-size
// blocks accessed through asynchronous submission/completion queue pairs,
// with device latencies charged from the cost model.
//
// Like its network sibling (package nic), the device offers no OS
// functionality: no file system, no page cache, no naming. The
// accelerator-specific log-structured layout the paper sketches in §5.3
// lives on top, in blob.go, and the storage libOS (internal/libos/catfish)
// exposes it through Demikernel file queues.
package spdk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// BlockSize is the device's logical block size.
const BlockSize = 4096

// Op is an NVMe command opcode.
type Op int

// Command opcodes.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Errors returned by Submit and surfaced in completions.
var (
	ErrQueueFull   = errors.New("spdk: submission queue full")
	ErrOutOfRange  = errors.New("spdk: LBA out of range")
	ErrBadLength   = errors.New("spdk: data length must equal one block")
	ErrDeviceReset = errors.New("spdk: device was reset")
	// ErrIO is an injected transient media error (chaos testing). Unlike
	// ErrDeviceReset it carries no queue-wide abort; retrying the same
	// command usually succeeds.
	ErrIO = errors.New("spdk: media I/O error")
)

// Command is one submission-queue entry.
type Command struct {
	Op  Op
	LBA int
	// Data holds exactly BlockSize bytes for writes; unused for reads
	// and flushes.
	Data []byte
}

// Completion is one completion-queue entry.
type Completion struct {
	ID   uint64
	Op   Op
	LBA  int
	Err  error
	Data []byte // block contents for reads
	Cost simclock.Lat
}

// Config describes a device.
type Config struct {
	NumBlocks  int // namespace capacity in blocks (default 16384)
	QueueDepth int // submission queue depth (default 256)
}

// Stats counts device events.
type Stats struct {
	Reads      int64
	Writes     int64
	Flushes    int64
	QueueFulls int64
	Errors     int64
	DMABytes   int64
	// Chaos counters.
	Resets         int64 // controller resets (spontaneous or requested)
	InjectedErrors int64 // commands failed by the injected error rate
}

// Device is a simulated NVMe namespace with one SQ/CQ pair. All methods
// are safe for concurrent use.
type Device struct {
	model *simclock.CostModel
	cfg   Config

	mu     sync.Mutex
	blocks map[int][]byte
	sq     []sqe
	cq     []Completion
	nextID uint64
	stats  Stats

	// Fault injection (chaos testing).
	rng     *rand.Rand // seeded by SetErrorRate; nil = no injection
	errRate float64    // probability a command fails with ErrIO
	downFor int        // commands still failed while the controller re-inits
}

type sqe struct {
	id  uint64
	cmd Command
}

// New creates a device.
func New(model *simclock.CostModel, cfg Config) *Device {
	if cfg.NumBlocks <= 0 {
		cfg.NumBlocks = 16384
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	return &Device{model: model, cfg: cfg, blocks: make(map[int][]byte)}
}

// NumBlocks returns the namespace capacity in blocks.
func (d *Device) NumBlocks() int { return d.cfg.NumBlocks }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// RegisterTelemetry lifts the device counters into a telemetry registry
// under prefix (e.g. "nvme"). Sample funcs snapshot Stats() at read time.
func (d *Device) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(d.Stats()) }
	}
	r.RegisterFunc(prefix+".reads", stat(func(s Stats) int64 { return s.Reads }))
	r.RegisterFunc(prefix+".writes", stat(func(s Stats) int64 { return s.Writes }))
	r.RegisterFunc(prefix+".flushes", stat(func(s Stats) int64 { return s.Flushes }))
	r.RegisterFunc(prefix+".queue_fulls", stat(func(s Stats) int64 { return s.QueueFulls }))
	r.RegisterFunc(prefix+".errors", stat(func(s Stats) int64 { return s.Errors }))
	r.RegisterFunc(prefix+".dma_bytes", stat(func(s Stats) int64 { return s.DMABytes }))
	r.RegisterFunc(prefix+".resets", stat(func(s Stats) int64 { return s.Resets }))
	r.RegisterFunc(prefix+".injected_errors", stat(func(s Stats) int64 { return s.InjectedErrors }))
}

// Submit enqueues a command and returns its completion ID. It fails fast
// with ErrQueueFull when the submission queue is at depth, as a polled
// NVMe driver would observe.
func (d *Device) Submit(cmd Command) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.sq) >= d.cfg.QueueDepth {
		d.stats.QueueFulls++
		return 0, ErrQueueFull
	}
	if cmd.Op == OpWrite && len(cmd.Data) != BlockSize {
		return 0, fmt.Errorf("%w: %d", ErrBadLength, len(cmd.Data))
	}
	d.nextID++
	id := d.nextID
	e := sqe{id: id, cmd: cmd}
	if cmd.Op == OpWrite {
		// The device DMAs the buffer at submission; keep a copy so the
		// caller may reuse its buffer immediately (completion-side
		// free-protection is the libOS's job, not the device's).
		e.cmd.Data = append([]byte(nil), cmd.Data...)
	}
	d.sq = append(d.sq, e)
	return id, nil
}

// Poll processes pending submissions and returns up to max completions
// (0 means all).
func (d *Device) Poll(max int) []Completion {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.processLocked()
	n := len(d.cq)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Completion, n)
	copy(out, d.cq)
	d.cq = d.cq[:copy(d.cq, d.cq[n:])]
	return out
}

func (d *Device) processLocked() {
	for _, e := range d.sq {
		c := Completion{ID: e.id, Op: e.cmd.Op, LBA: e.cmd.LBA}
		if d.downFor > 0 {
			// Controller still re-initialising after a reset: every
			// command aborts without touching media.
			d.downFor--
			c.Err = ErrDeviceReset
			d.stats.Errors++
			d.cq = append(d.cq, c)
			continue
		}
		if d.errRate > 0 && d.rng != nil && d.rng.Float64() < d.errRate {
			// Injected transient media error; the command has no effect.
			d.stats.InjectedErrors++
			c.Err = ErrIO
			d.stats.Errors++
			d.cq = append(d.cq, c)
			continue
		}
		switch e.cmd.Op {
		case OpRead:
			if e.cmd.LBA < 0 || e.cmd.LBA >= d.cfg.NumBlocks {
				c.Err = ErrOutOfRange
			} else {
				d.stats.Reads++
				d.stats.DMABytes += BlockSize
				blk, ok := d.blocks[e.cmd.LBA]
				data := make([]byte, BlockSize)
				if ok {
					copy(data, blk)
				}
				c.Data = data
				c.Cost = d.model.NVMeReadNS + d.model.DMACost(BlockSize)
			}
		case OpWrite:
			if e.cmd.LBA < 0 || e.cmd.LBA >= d.cfg.NumBlocks {
				c.Err = ErrOutOfRange
			} else {
				d.stats.Writes++
				d.stats.DMABytes += BlockSize
				d.blocks[e.cmd.LBA] = e.cmd.Data
				c.Cost = d.model.NVMeWriteNS + d.model.DMACost(BlockSize)
			}
		case OpFlush:
			d.stats.Flushes++
			c.Cost = d.model.NVMeWriteNS
		}
		if c.Err != nil {
			d.stats.Errors++
		}
		d.cq = append(d.cq, c)
	}
	d.sq = d.sq[:0]
}

// Execute submits cmd and polls until its completion arrives, returning
// it. It is the synchronous convenience used by the blob layer; other
// completions that surface first are queued back in order.
func (d *Device) Execute(cmd Command) Completion {
	id, err := d.Submit(cmd)
	if err != nil {
		return Completion{Op: cmd.Op, LBA: cmd.LBA, Err: err}
	}
	for {
		d.mu.Lock()
		d.processLocked()
		for i, c := range d.cq {
			if c.ID == id {
				d.cq = append(d.cq[:i], d.cq[i+1:]...)
				d.mu.Unlock()
				return c
			}
		}
		d.mu.Unlock()
	}
}

// Reset clears queues and storage, as a factory-level namespace format
// would. (For a media-preserving controller reset, see ControllerReset.)
func (d *Device) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.abortInflightLocked()
	d.blocks = make(map[int][]byte)
}

// ControllerReset simulates a spontaneous NVMe controller reset: every
// in-flight command aborts with ErrDeviceReset and the next downFor
// submitted commands also fail while the controller re-initialises.
// Media contents are preserved — after recovery, retried commands see
// the data that was durably written before the reset.
func (d *Device) ControllerReset(downFor int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Resets++
	d.abortInflightLocked()
	if downFor > 0 {
		d.downFor = downFor
	}
}

func (d *Device) abortInflightLocked() {
	for _, e := range d.sq {
		d.stats.Errors++
		d.cq = append(d.cq, Completion{ID: e.id, Op: e.cmd.Op, LBA: e.cmd.LBA, Err: ErrDeviceReset})
	}
	d.sq = d.sq[:0]
}

// SetErrorRate arms (or, with rate 0, disarms) seeded random command
// failures: each processed command fails with ErrIO with probability
// rate. Deterministic for a fixed seed and command sequence.
func (d *Device) SetErrorRate(rate float64, seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.errRate = rate
	if rate > 0 {
		d.rng = rand.New(rand.NewSource(seed))
	} else {
		d.rng = nil
	}
}
