package nic

import (
	"errors"
	"testing"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

var (
	macT1 = fabric.MAC{0x02, 0, 0, 0, 1, 0x01}
	macT2 = fabric.MAC{0x02, 0, 0, 0, 1, 0x02}
	macT3 = fabric.MAC{0x02, 0, 0, 0, 1, 0x03}
)

var (
	ipT1 = [4]byte{10, 0, 0, 1}
	ipT2 = [4]byte{10, 0, 0, 2}
	ipT3 = [4]byte{10, 0, 0, 3}
)

// ipv4UDP builds a minimal IPv4/UDP frame with the fields classification
// reads: etherType, IHL, proto, src/dst IP, src/dst port.
func ipv4UDP(dst, src fabric.MAC, srcIP, dstIP [4]byte, srcPort, dstPort uint16, payload string) []byte {
	data := make([]byte, 42+len(payload))
	copy(data[0:6], dst[:])
	copy(data[6:12], src[:])
	data[12], data[13] = 0x08, 0x00
	data[14] = 0x45 // IHL 5, no options
	data[23] = 17   // UDP
	copy(data[26:30], srcIP[:])
	copy(data[30:34], dstIP[:])
	data[34], data[35] = byte(srcPort>>8), byte(srcPort)
	data[36], data[37] = byte(dstPort>>8), byte(dstPort)
	copy(data[42:], payload)
	return data
}

// arpRequest builds a broadcast ARP request for targetIP.
func arpRequest(src fabric.MAC, srcIP, targetIP [4]byte) []byte {
	data := make([]byte, 42)
	copy(data[0:6], fabric.Broadcast[:])
	copy(data[6:12], src[:])
	data[12], data[13] = 0x08, 0x06
	// ARP body: htype/ptype/hlen/plen/oper, sender MAC+IP, target MAC+IP.
	data[14], data[15] = 0x00, 0x01
	data[16], data[17] = 0x08, 0x00
	data[18], data[19] = 6, 4
	data[20], data[21] = 0x00, 0x01
	copy(data[22:28], src[:])
	copy(data[28:32], srcIP[:])
	copy(data[38:42], targetIP[:])
	return data
}

// sharedNIC builds an RxQueues-queue device plus a raw injection port on
// the same switch.
func sharedNIC(t *testing.T, queues int) (*Device, *fabric.Port) {
	t.Helper()
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 7)
	d := New(&model, sw, Config{MAC: fabric.MAC{0x02, 0xff, 0, 0, 0, 0}, RxQueues: queues})
	inj := sw.NewPort(256)
	// Teach the switch where the shared NIC lives so unicast to any
	// tenant MAC (which the switch has never seen as a source) floods —
	// flooding still reaches the device, which is all these tests need.
	return d, inj
}

func TestQueueGroupClaims(t *testing.T) {
	d, _ := sharedNIC(t, 8)
	g1, err := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	if err != nil {
		t.Fatal(err)
	}
	if g1.BaseQueue() != 0 || g1.NumRxQueues() != 4 {
		t.Fatalf("g1 claim = [%d,+%d)", g1.BaseQueue(), g1.NumRxQueues())
	}
	g2, err := d.NewQueueGroup("t2", 2, GroupConfig{MAC: macT2, IP: ipT2})
	if err != nil {
		t.Fatal(err)
	}
	if g2.BaseQueue() != 4 || g2.NumRxQueues() != 2 {
		t.Fatalf("g2 claim = [%d,+%d), want [4,+2)", g2.BaseQueue(), g2.NumRxQueues())
	}
	if _, err := d.NewQueueGroup("t3", 4, GroupConfig{MAC: macT3, IP: ipT3}); !errors.Is(err, ErrNoQueues) {
		t.Fatalf("oversubscribed claim: err = %v, want ErrNoQueues", err)
	}
	if _, err := d.NewQueueGroup("dup-mac", 1, GroupConfig{MAC: macT1, IP: ipT3}); !errors.Is(err, ErrSteeringDenied) {
		t.Fatalf("duplicate MAC: err = %v, want ErrSteeringDenied", err)
	}
	if _, err := d.NewQueueGroup("dup-ip", 1, GroupConfig{MAC: macT3, IP: ipT2}); !errors.Is(err, ErrSteeringDenied) {
		t.Fatalf("duplicate IP: err = %v, want ErrSteeringDenied", err)
	}
}

// drainAll pops every queue and returns frame payload owners by queue.
func drainAll(d *Device) map[int][]fabric.Frame {
	out := map[int][]fabric.Frame{}
	for q := 0; q < d.NumRxQueues(); q++ {
		if fs := d.RxBurst(q, 1024); len(fs) > 0 {
			out[q] = fs
		}
	}
	return out
}

func TestGroupOwnershipSteering(t *testing.T) {
	d, inj := sharedNIC(t, 8)
	g1, _ := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	g2, _ := d.NewQueueGroup("t2", 2, GroupConfig{MAC: macT2, IP: ipT2})

	srcIP := [4]byte{10, 0, 0, 99}
	for port := uint16(5000); port < 5032; port++ {
		inj.Send(fabric.Frame{Data: ipv4UDP(macT1, macT3, srcIP, ipT1, port, 7000, "to-t1")})
		inj.Send(fabric.Frame{Data: ipv4UDP(macT2, macT3, srcIP, ipT2, port, 7000, "to-t2")})
	}
	// A frame owned by nobody: unicast to an unclaimed MAC the switch
	// has never learned, so it floods to the device.
	macStray := fabric.MAC{0x02, 0, 0, 0, 1, 0xEE}
	inj.Send(fabric.Frame{Data: ipv4UDP(macStray, macT1, srcIP, ipT3, 1, 2, "stray")})

	byQueue := drainAll(d)
	for q, frames := range byQueue {
		for _, f := range frames {
			var dst fabric.MAC
			copy(dst[:], f.Data[0:6])
			switch dst {
			case macT1:
				if q < g1.BaseQueue() || q >= g1.BaseQueue()+g1.NumRxQueues() {
					t.Fatalf("t1 frame on queue %d outside [0,4)", q)
				}
			case macT2:
				if q < g2.BaseQueue() || q >= g2.BaseQueue()+g2.NumRxQueues() {
					t.Fatalf("t2 frame on queue %d outside [4,6)", q)
				}
			default:
				t.Fatalf("unowned frame (dst %v) delivered on queue %d", dst, q)
			}
		}
	}
	if got := d.Stats().SteerDrops; got != 1 {
		t.Fatalf("SteerDrops = %d, want 1 (the stray)", got)
	}
	if g1.Stats().RxFrames != 32 || g2.Stats().RxFrames != 32 {
		t.Fatalf("group rx counters = %d/%d, want 32/32",
			g1.Stats().RxFrames, g2.Stats().RxFrames)
	}
	// Conservation with the new bucket: delivered = rx + dropped + steer.
	s := d.Stats()
	if s.RxFrames+s.RxDropped+s.FilterDrops+s.SteerDrops != 65 {
		t.Fatalf("conservation: %+v does not sum to 65 delivered", s)
	}
}

func TestARPSteersByTargetIP(t *testing.T) {
	d, inj := sharedNIC(t, 8)
	g1, _ := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	g2, _ := d.NewQueueGroup("t2", 2, GroupConfig{MAC: macT2, IP: ipT2})

	inj.Send(fabric.Frame{Data: arpRequest(macT3, [4]byte{10, 0, 0, 99}, ipT2)})
	byQueue := drainAll(d)
	if len(byQueue[g2.BaseQueue()]) != 1 {
		t.Fatalf("ARP for t2's IP not on t2's base queue: %v", keysOf(byQueue))
	}
	// ARP for an IP nobody owns is a steer drop, not anyone's traffic.
	inj.Send(fabric.Frame{Data: arpRequest(macT3, [4]byte{10, 0, 0, 99}, ipT3)})
	if got := drainAll(d); len(got) != 0 {
		t.Fatalf("unowned ARP delivered: %v", keysOf(got))
	}
	if d.Stats().SteerDrops != 1 {
		t.Fatalf("SteerDrops = %d, want 1", d.Stats().SteerDrops)
	}
	_ = g1
}

func keysOf(m map[int][]fabric.Frame) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func TestAddSteeringBounds(t *testing.T) {
	d, _ := sharedNIC(t, 8)
	g, _ := d.NewQueueGroup("t1", 4, GroupConfig{
		MAC:    macT1,
		IP:     ipT1,
		Bounds: SteeringBounds{PortLo: 1000, PortHi: 2000},
	})
	if err := g.AddSteering(SteeringRule{DstPortLo: 1500, DstPortHi: 1600, Queue: 2}); err != nil {
		t.Fatalf("in-bounds rule refused: %v", err)
	}
	cases := []SteeringRule{
		{DstPortLo: 500, DstPortHi: 600, Queue: 0},          // below bound
		{DstPortLo: 1500, DstPortHi: 2500, Queue: 0},        // straddles bound
		{Queue: 0},                                          // any-port under bounded ports
		{DstPortLo: 1500, DstPortHi: 1600, Queue: 4},        // queue outside group
		{DstIP: ipT2, DstPortLo: 1500, DstPortHi: 1600},     // foreign IP
		{DstPortLo: 1600, DstPortHi: 1500, Queue: 0},        // inverted range
	}
	for i, r := range cases {
		if err := g.AddSteering(r); !errors.Is(err, ErrSteeringDenied) {
			t.Fatalf("case %d: err = %v, want ErrSteeringDenied", i, err)
		}
	}
	if got := g.Stats().SteeringDenied; got != int64(len(cases)) {
		t.Fatalf("SteeringDenied = %d, want %d", got, len(cases))
	}
}

func TestSteeringRuleDirectsFlow(t *testing.T) {
	d, inj := sharedNIC(t, 8)
	g, _ := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	if err := g.AddSteering(SteeringRule{Proto: 17, DstPortLo: 7000, DstPortHi: 7000, Queue: 3}); err != nil {
		t.Fatal(err)
	}
	srcIP := [4]byte{10, 0, 0, 99}
	for sp := uint16(6000); sp < 6016; sp++ {
		inj.Send(fabric.Frame{Data: ipv4UDP(macT1, macT3, srcIP, ipT1, sp, 7000, "steered")})
	}
	byQueue := drainAll(d)
	if len(byQueue) != 1 || len(byQueue[g.BaseQueue()+3]) != 16 {
		t.Fatalf("steered flow scattered across queues %v, want all on %d",
			keysOf(byQueue), g.BaseQueue()+3)
	}
}

func TestGroupRSSAlignment(t *testing.T) {
	d, inj := sharedNIC(t, 8)
	// Claim an offset so the group's range is [2, 6): alignment must be
	// base-relative, not absolute.
	if _, err := d.NewQueueGroup("pad", 2, GroupConfig{MAC: macT3, IP: ipT3}); err != nil {
		t.Fatal(err)
	}
	g, _ := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	srcIP := [4]byte{10, 0, 0, 99}
	for sp := uint16(6000); sp < 6064; sp++ {
		want := g.BaseQueue() + RSSQueueFlow(srcIP, ipT1, sp, 9000, g.NumRxQueues())
		inj.Send(fabric.Frame{Data: ipv4UDP(macT1, macT2, srcIP, ipT1, sp, 9000, "rss")})
		got := drainAll(d)
		if len(got) != 1 || len(got[want]) != 1 {
			t.Fatalf("srcPort %d: frame on queues %v, want queue %d (group-relative RSS)",
				sp, keysOf(got), want)
		}
	}
}

// TestClassifyZeroAlloc fences the multi-tenant classification hot path:
// snapshot load + MAC map lookup + group RSS must not allocate. This is
// the satellite that replaced the per-frame filterMu.RLock — the point
// of copy-on-write classification is a steady state with zero locks and
// zero garbage per frame.
func TestClassifyZeroAlloc(t *testing.T) {
	d, _ := sharedNIC(t, 8)
	g, _ := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	if err := g.AddSteering(SteeringRule{Proto: 17, DstPortLo: 7000, DstPortHi: 7000, Queue: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewQueueGroup("t2", 2, GroupConfig{MAC: macT2, IP: ipT2}); err != nil {
		t.Fatal(err)
	}
	frames := [][]byte{
		ipv4UDP(macT1, macT3, [4]byte{10, 0, 0, 99}, ipT1, 6001, 7000, "ruled"),
		ipv4UDP(macT1, macT3, [4]byte{10, 0, 0, 99}, ipT1, 6002, 8000, "rss"),
		ipv4UDP(macT2, macT3, [4]byte{10, 0, 0, 99}, ipT2, 6003, 8000, "other"),
		arpRequest(macT3, [4]byte{10, 0, 0, 99}, ipT1),
		ipv4UDP(macT3, macT1, [4]byte{10, 0, 0, 99}, ipT3, 1, 2, "stray"),
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		tab := d.class.Load()
		f := fabric.Frame{Data: frames[i%len(frames)]}
		i++
		d.classify(tab, &f)
	})
	if avg != 0 {
		t.Fatalf("classify allocates %.1f per frame, want 0", avg)
	}
}

// TestConcurrentMutationVsRx exercises the copy-on-write table under
// -race: one goroutine mutates filters and steering rules while another
// drains traffic.
func TestConcurrentMutationVsRx(t *testing.T) {
	d, inj := sharedNIC(t, 8)
	g, _ := d.NewQueueGroup("t1", 4, GroupConfig{MAC: macT1, IP: ipT1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			d.AddFilter(HWFilter{Match: func([]byte) bool { return false }})
			_ = g.AddSteering(SteeringRule{Proto: 17, DstPortLo: uint16(7000 + i), DstPortHi: uint16(7000 + i), Queue: i % 4})
			if i%50 == 0 {
				d.ClearFilters()
			}
		}
	}()
	srcIP := [4]byte{10, 0, 0, 99}
	got := 0
	for i := 0; i < 200; i++ {
		inj.Send(fabric.Frame{Data: ipv4UDP(macT1, macT3, srcIP, ipT1, uint16(6000+i), 7000, "x")})
		for q := 0; q < 8; q++ {
			got += len(d.RxBurst(q, 64))
		}
	}
	<-done
	for q := 0; q < 8; q++ {
		got += len(d.RxBurst(q, 1024))
	}
	if got != 200 {
		t.Fatalf("received %d of 200 frames during concurrent mutation", got)
	}
}
