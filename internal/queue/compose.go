package queue

import (
	"container/heap"
	"sync"

	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

// This file implements the queue composition operators of §4.3: filter,
// map, sort, and merge. Each returns a new queue derived from existing
// ones; applications combine them "to create complex I/O processing
// pipelines, which can then be offloaded to a kernel-bypass accelerator".
//
// The implementations here are the CPU fallback the paper requires
// ("library OSes always implement filters directly on supported devices
// but default to using the CPU if necessary"); the DPDK libOS lowers
// eligible filters onto the simulated NIC's hardware filter table instead
// (see internal/libos/catnip and internal/offload).

// FilterFunc decides whether an element passes a filter queue.
type FilterFunc func(s sga.SGA) bool

// MapFunc transforms an element in place as it crosses a map queue.
type MapFunc func(s sga.SGA) sga.SGA

// LessFunc orders elements in a sort queue; the element for which Less is
// true against all others pops first.
type LessFunc func(a, b sga.SGA) bool

// FilterQueue presents only the elements of an inner queue that match a
// predicate. Pops transparently discard non-matching elements; pushes of
// non-matching elements complete with ErrFiltered and never reach the
// inner queue.
type FilterQueue struct {
	inner IoQueue
	fn    FilterFunc
	model *simclock.CostModel
}

// NewFilterQueue wraps inner with fn, charging per-element CPU filter
// cost from model.
func NewFilterQueue(inner IoQueue, fn FilterFunc, model *simclock.CostModel) *FilterQueue {
	return &FilterQueue{inner: inner, fn: fn, model: model}
}

// Push implements IoQueue.
func (q *FilterQueue) Push(s sga.SGA, cost simclock.Lat, done DoneFunc) {
	cost += q.model.FilterNS
	if !q.fn(s) {
		done(Completion{Kind: OpPush, Err: ErrFiltered, Cost: cost})
		return
	}
	q.inner.Push(s, cost, done)
}

// Pop implements IoQueue: it keeps popping the inner queue until an
// element passes the filter.
func (q *FilterQueue) Pop(done DoneFunc) {
	q.inner.Pop(func(c Completion) {
		if c.Err != nil {
			done(c)
			return
		}
		c.Cost += q.model.FilterNS
		if q.fn(c.SGA) {
			done(c)
			return
		}
		c.SGA.Free() // discarded element returns its buffers
		q.Pop(done)
	})
}

// Pump implements IoQueue.
func (q *FilterQueue) Pump() int { return q.inner.Pump() }

// Close implements IoQueue.
func (q *FilterQueue) Close() error { return q.inner.Close() }

// MapQueue applies a transformation to every element crossing it.
type MapQueue struct {
	inner IoQueue
	fn    MapFunc
	model *simclock.CostModel
}

// NewMapQueue wraps inner with fn.
func NewMapQueue(inner IoQueue, fn MapFunc, model *simclock.CostModel) *MapQueue {
	return &MapQueue{inner: inner, fn: fn, model: model}
}

// Push implements IoQueue.
func (q *MapQueue) Push(s sga.SGA, cost simclock.Lat, done DoneFunc) {
	q.inner.Push(q.fn(s), cost+q.model.MapNS, done)
}

// Pop implements IoQueue.
func (q *MapQueue) Pop(done DoneFunc) {
	q.inner.Pop(func(c Completion) {
		if c.Err == nil {
			c.SGA = q.fn(c.SGA)
			c.Cost += q.model.MapNS
		}
		done(c)
	})
}

// Pump implements IoQueue.
func (q *MapQueue) Pump() int { return q.inner.Pump() }

// Close implements IoQueue.
func (q *MapQueue) Close() error { return q.inner.Close() }

// SortQueue reorders an inner queue: pops return the highest-priority
// buffered element rather than the oldest. It keeps a small window of
// outstanding pops on the inner queue and heapifies their results.
type SortQueue struct {
	inner IoQueue
	less  LessFunc

	mu          sync.Mutex
	h           sgaHeap
	waiters     []DoneFunc
	outstanding int
	window      int
	closed      bool
}

// NewSortQueue wraps inner, ordering pops by less. window bounds how many
// inner pops may be in flight pre-fetching elements (0 means 8).
func NewSortQueue(inner IoQueue, less LessFunc, window int) *SortQueue {
	if window <= 0 {
		window = 8
	}
	return &SortQueue{inner: inner, less: less, window: window, h: sgaHeap{less: less}}
}

// Push implements IoQueue: pushes pass through to the inner queue.
func (q *SortQueue) Push(s sga.SGA, cost simclock.Lat, done DoneFunc) {
	q.inner.Push(s, cost, done)
}

// Pop implements IoQueue.
func (q *SortQueue) Pop(done DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(Completion{Kind: OpPop, Err: ErrClosed})
		return
	}
	if q.h.Len() > 0 {
		c := heap.Pop(&q.h).(Completion)
		q.mu.Unlock()
		done(c)
		return
	}
	q.waiters = append(q.waiters, done)
	q.mu.Unlock()
}

// Pump implements IoQueue: it refills the prefetch window and serves
// waiters in priority order.
func (q *SortQueue) Pump() int {
	n := q.inner.Pump()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return n
	}
	want := q.window - q.outstanding
	q.outstanding += want
	q.mu.Unlock()
	for i := 0; i < want; i++ {
		q.inner.Pop(q.onInnerPop)
		n++
	}
	q.serveWaiters()
	return n
}

func (q *SortQueue) onInnerPop(c Completion) {
	q.mu.Lock()
	q.outstanding--
	if c.Err != nil {
		// Propagate terminal errors to one waiter, if any.
		if len(q.waiters) > 0 && c.Err != ErrClosed {
			w := q.waiters[0]
			q.waiters = q.waiters[1:]
			q.mu.Unlock()
			w(c)
			return
		}
		q.mu.Unlock()
		return
	}
	heap.Push(&q.h, c)
	q.mu.Unlock()
	q.serveWaiters()
}

func (q *SortQueue) serveWaiters() {
	for {
		q.mu.Lock()
		if len(q.waiters) == 0 || q.h.Len() == 0 {
			q.mu.Unlock()
			return
		}
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		c := heap.Pop(&q.h).(Completion)
		q.mu.Unlock()
		w(c)
	}
}

// Buffered returns how many elements are staged in the priority heap.
func (q *SortQueue) Buffered() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.h.Len()
}

// Close implements IoQueue.
func (q *SortQueue) Close() error {
	q.mu.Lock()
	q.closed = true
	waiters := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range waiters {
		w(Completion{Kind: OpPop, Err: ErrClosed})
	}
	return q.inner.Close()
}

// sgaHeap orders completions by the owning SortQueue's LessFunc. The heap
// stores the less function on each push via closure capture; to keep it
// simple the queue re-sorts using a package-level trick: completions carry
// their priority through the SGA and the heap holds a reference to less.
type sgaHeap struct {
	items []Completion
	less  LessFunc
}

func (h sgaHeap) Len() int           { return len(h.items) }
func (h sgaHeap) Less(i, j int) bool { return h.less(h.items[i].SGA, h.items[j].SGA) }
func (h sgaHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *sgaHeap) Push(x any) { h.items = append(h.items, x.(Completion)) }

func (h *sgaHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// MergeQueue combines two queues (§4.3): "a pop from either queue results
// in a pop from the merged queue and a push to the merged queue results
// in a push to both queues."
type MergeQueue struct {
	a, b IoQueue

	mu          sync.Mutex
	ready       []Completion
	waiters     []DoneFunc
	outstanding int
	window      int
	closed      bool
}

// NewMergeQueue merges a and b. window bounds outstanding prefetch pops
// per inner queue (0 means 4).
func NewMergeQueue(a, b IoQueue, window int) *MergeQueue {
	if window <= 0 {
		window = 4
	}
	return &MergeQueue{a: a, b: b, window: window}
}

// Push implements IoQueue: the element goes to both inner queues; the
// push completes when both accept it.
func (q *MergeQueue) Push(s sga.SGA, cost simclock.Lat, done DoneFunc) {
	var mu sync.Mutex
	remaining := 2
	var firstErr error
	var maxCost simclock.Lat
	child := func(c Completion) {
		mu.Lock()
		defer mu.Unlock()
		if c.Err != nil && firstErr == nil {
			firstErr = c.Err
		}
		if c.Cost > maxCost {
			maxCost = c.Cost
		}
		remaining--
		if remaining == 0 {
			done(Completion{Kind: OpPush, Err: firstErr, Cost: maxCost})
		}
	}
	q.a.Push(s, cost, child)
	q.b.Push(s, cost, child)
}

// Pop implements IoQueue.
func (q *MergeQueue) Pop(done DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(Completion{Kind: OpPop, Err: ErrClosed})
		return
	}
	if len(q.ready) > 0 {
		c := q.ready[0]
		q.ready = q.ready[1:]
		q.mu.Unlock()
		done(c)
		return
	}
	q.waiters = append(q.waiters, done)
	q.mu.Unlock()
}

// Pump implements IoQueue.
func (q *MergeQueue) Pump() int {
	n := q.a.Pump() + q.b.Pump()
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return n
	}
	want := 2*q.window - q.outstanding
	perInner := want / 2
	q.outstanding += perInner * 2
	q.mu.Unlock()
	for i := 0; i < perInner; i++ {
		q.a.Pop(q.onInnerPop)
		q.b.Pop(q.onInnerPop)
		n += 2
	}
	q.serveWaiters()
	return n
}

func (q *MergeQueue) onInnerPop(c Completion) {
	q.mu.Lock()
	q.outstanding--
	if c.Err != nil {
		q.mu.Unlock()
		return
	}
	q.ready = append(q.ready, c)
	q.mu.Unlock()
	q.serveWaiters()
}

func (q *MergeQueue) serveWaiters() {
	for {
		q.mu.Lock()
		if len(q.waiters) == 0 || len(q.ready) == 0 {
			q.mu.Unlock()
			return
		}
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		c := q.ready[0]
		q.ready = q.ready[1:]
		q.mu.Unlock()
		w(c)
	}
}

// Close implements IoQueue: closes both inner queues.
func (q *MergeQueue) Close() error {
	q.mu.Lock()
	q.closed = true
	waiters := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range waiters {
		w(Completion{Kind: OpPop, Err: ErrClosed})
	}
	err1 := q.a.Close()
	err2 := q.b.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
