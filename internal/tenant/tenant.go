// Package tenant is the multi-tenant protection plane of the simulated
// kernel-bypass stack: the piece of the paper's argument (§3, §7) that
// the OS role which *cannot* move into the application is protecting
// applications from each other. Untrusting applications share one NIC;
// nothing in a DPDK-class device stops one of them from hogging frame
// memory, binding filters over a neighbour's flows, or saturating the
// TX path — so, following Beadle et al.'s "Safe Sharing of Fast
// Kernel-Bypass I/O Among Nontrusting Applications" (see PAPERS.md),
// the control plane pre-computes per-tenant resource bounds at bind
// time and the data plane enforces them with counters, not locks:
//
//   - a Ledger charges every pooled frame a tenant holds against its
//     byte/frame quota (fabric.FramePool calls it through the
//     fabric.Accountant interface, mirroring membuf.WithCapacity's
//     typed-backpressure model);
//   - steering bounds (which MAC/IP/port ranges a tenant may bind
//     filters for) are validated by internal/nic at rule-install time —
//     the data path never re-checks them;
//   - TX weight and rate-limit parameters feed the NIC's
//     weighted-deficit-round-robin scheduler.
//
// The ledger also makes the frame-conservation law per-tenant: every
// frame a tenant touches is charged to it, every release credits it,
// and Reclaim zeroes it on crash — so "the hostile tenant's quota
// returns to zero after Crash()" is an assertable invariant, not a
// hope.
package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"demikernel/internal/fabric"
	"demikernel/internal/telemetry"
)

// ID names one tenant sharing the NIC.
type ID string

// Policy is a tenant's resource contract, fixed at registration. The
// zero value of any field means "unbounded / default" so single-tenant
// rigs lose nothing.
type Policy struct {
	// FrameQuotaBytes caps the bytes of pooled frame storage the tenant
	// may hold at once (TX frames in flight, RX payload copies, pop
	// clones). Exhaustion surfaces as a failed FramePool.Get — the
	// frame-plane analogue of membuf.ErrNoMem. 0 = unbounded.
	FrameQuotaBytes int64
	// FrameQuotaFrames caps the number of outstanding pooled frames.
	// 0 = unbounded.
	FrameQuotaFrames int64
	// MemBytes caps the tenant's pinned (device-registered) staging
	// memory; it is wired into the libOS membuf manager, whose
	// exhaustion is the classic typed membuf.ErrNoMem. 0 = unbounded.
	MemBytes int64

	// TxWeight is the tenant's share in the NIC's weighted-deficit-
	// round-robin TX scheduler. 0 = weight 1.
	TxWeight int
	// TxRateBps, when nonzero, rate-limits the tenant's TX path with a
	// token bucket of TxBurstBytes (default: one quantum) refilled at
	// TxRateBps bytes/second.
	TxRateBps    int64
	// TxBurstBytes is the token bucket depth for TxRateBps.
	TxBurstBytes int64

	// MACs / IPs / PortLo..PortHi bound what the tenant may bind
	// steering rules for. Empty MACs/IPs default to exactly the
	// tenant's own identity; PortLo=PortHi=0 means every port.
	MACs   []fabric.MAC
	IPs    [][4]byte
	PortLo uint16
	PortHi uint16
}

// ErrDuplicate is returned by Register for an already-registered ID.
var ErrDuplicate = errors.New("tenant: id already registered")

// Ledger is a tenant's frame-quota account: lock-free charge/credit
// counters the frame-pool hot path can afford. It implements
// fabric.Accountant.
//
// Credits clamp at zero rather than going negative: after a crash
// Reclaim zeroes the account while frames the dead tenant leaked may
// still be released by the fabric later; their late credits must not
// drive occupancy below zero (that would hide a subsequent leak of
// equal size).
type Ledger struct {
	maxBytes  int64
	maxFrames int64

	bytes   atomic.Int64
	frames  atomic.Int64
	denials atomic.Int64

	reclaims        atomic.Int64
	reclaimedFrames atomic.Int64
	reclaimedBytes  atomic.Int64
}

// NewLedger returns a ledger enforcing the given caps (0 = unbounded).
func NewLedger(maxBytes, maxFrames int64) *Ledger {
	return &Ledger{maxBytes: maxBytes, maxFrames: maxFrames}
}

// ChargeFrame implements fabric.Accountant: it accounts one outstanding
// frame of n bytes, refusing (and counting a denial) when either cap
// would be exceeded. The optimistic add-then-undo keeps the common case
// a single atomic per cap; a racing pair may transiently observe the
// sum over cap and both back off, which errs on the side of protection.
func (l *Ledger) ChargeFrame(n int) bool {
	if f := l.frames.Add(1); l.maxFrames > 0 && f > l.maxFrames {
		decClamped(&l.frames, 1)
		l.denials.Add(1)
		return false
	}
	if b := l.bytes.Add(int64(n)); l.maxBytes > 0 && b > l.maxBytes {
		decClamped(&l.bytes, int64(n))
		decClamped(&l.frames, 1)
		l.denials.Add(1)
		return false
	}
	return true
}

// CreditFrame implements fabric.Accountant: the final release of an
// n-byte frame returns its account. Clamped at zero (see type comment).
func (l *Ledger) CreditFrame(n int) {
	decClamped(&l.frames, 1)
	decClamped(&l.bytes, int64(n))
}

// decClamped subtracts n from v without letting it go below zero.
func decClamped(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		next := cur - n
		if next < 0 {
			next = 0
		}
		if cur == next || v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Reclaim zeroes the account — the crash path: whatever the dead tenant
// still held (including frames it leaked by withholding Release) is
// repossessed by the control plane. Returns what was outstanding.
func (l *Ledger) Reclaim() (frames, bytes int64) {
	frames = l.frames.Swap(0)
	bytes = l.bytes.Swap(0)
	l.reclaims.Add(1)
	l.reclaimedFrames.Add(frames)
	l.reclaimedBytes.Add(bytes)
	return frames, bytes
}

// Outstanding reports the currently charged frames and bytes.
func (l *Ledger) Outstanding() (frames, bytes int64) {
	return l.frames.Load(), l.bytes.Load()
}

// Denials reports how many charges the caps refused.
func (l *Ledger) Denials() int64 { return l.denials.Load() }

// Reclaims reports completed Reclaim calls and the cumulative frames
// and bytes they repossessed.
func (l *Ledger) Reclaims() (count, frames, bytes int64) {
	return l.reclaims.Load(), l.reclaimedFrames.Load(), l.reclaimedBytes.Load()
}

// Tenant is one registered tenant: identity, contract, and account.
type Tenant struct {
	ID     ID
	Policy Policy
	Ledger *Ledger
}

// RegisterTelemetry lifts the tenant's ledger counters into a registry
// under prefix (e.g. "tenant.a"): quota occupancy, denials, reclaims.
func (t *Tenant) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	r.RegisterFunc(prefix+".frames_outstanding", func() int64 {
		f, _ := t.Ledger.Outstanding()
		return f
	})
	r.RegisterFunc(prefix+".bytes_outstanding", func() int64 {
		_, b := t.Ledger.Outstanding()
		return b
	})
	r.RegisterFunc(prefix+".quota_denials", t.Ledger.Denials)
	r.RegisterFunc(prefix+".reclaims", func() int64 {
		c, _, _ := t.Ledger.Reclaims()
		return c
	})
	r.RegisterFunc(prefix+".reclaimed_frames", func() int64 {
		_, f, _ := t.Ledger.Reclaims()
		return f
	})
	r.RegisterFunc(prefix+".reclaimed_bytes", func() int64 {
		_, _, b := t.Ledger.Reclaims()
		return b
	})
}

// Registry is the TenantID-keyed control plane: registration is the
// bind-time moment every per-tenant bound is fixed. It is safe for
// concurrent use; the data path never touches it.
type Registry struct {
	mu      sync.Mutex
	tenants map[ID]*Tenant
	order   []ID
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[ID]*Tenant)}
}

// Register creates the tenant and its ledger from the policy. A second
// registration of the same ID fails with ErrDuplicate: a tenant's
// contract is fixed for its lifetime.
func (r *Registry) Register(id ID, p Policy) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	t := &Tenant{ID: id, Policy: p, Ledger: NewLedger(p.FrameQuotaBytes, p.FrameQuotaFrames)}
	r.tenants[id] = t
	r.order = append(r.order, id)
	return t, nil
}

// Get returns the tenant registered under id.
func (r *Registry) Get(id ID) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	return t, ok
}

// List returns every tenant in registration order.
func (r *Registry) List() []*Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tenant, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.tenants[id])
	}
	return out
}

// RegisterTelemetry registers every tenant's ledger under
// prefix.<id>.* (tenants registered later are not picked up; register
// tenants before telemetry, as Cluster.Spawn does).
func (r *Registry) RegisterTelemetry(reg *telemetry.Registry, prefix string) {
	for _, t := range r.List() {
		t.RegisterTelemetry(reg, prefix+"."+string(t.ID))
	}
}
