package simclock

import (
	"testing"
	"testing/quick"
)

func TestCopyCostCalibration(t *testing.T) {
	m := Datacenter2019()
	// The paper: copying a 4k page takes ~1µs on a 4GHz CPU.
	got := m.CopyCost(4096)
	if got < 900 || got > 1100 {
		t.Fatalf("CopyCost(4096) = %v, want ~1µs (paper §3.2)", got)
	}
}

func TestAppRequestCalibration(t *testing.T) {
	m := Datacenter2019()
	// The paper: Redis spends about 2µs per read request.
	if m.AppRequestNS != 2000 {
		t.Fatalf("AppRequestNS = %v, want 2000ns (paper §3.2)", m.AppRequestNS)
	}
	// Corollary in §3.2: a 4KB copy adds ~50% overhead to a Redis request.
	overhead := float64(m.CopyCost(4096)) / float64(m.AppRequestNS)
	if overhead < 0.4 || overhead > 0.6 {
		t.Fatalf("4KB copy overhead on app request = %.2f, want ~0.5", overhead)
	}
}

func TestLatString(t *testing.T) {
	cases := []struct {
		in   Lat
		want string
	}{
		{500, "500ns"},
		{1500, "1.50µs"},
		{2_000_000, "2.00ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Lat(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestLatAddAssociative(t *testing.T) {
	f := func(a, b, c int32) bool {
		x, y, z := Lat(a), Lat(b), Lat(c)
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopyCostMonotonic(t *testing.T) {
	m := Datacenter2019()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.CopyCost(x) <= m.CopyCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDMAcheaperThanCopy(t *testing.T) {
	m := Datacenter2019()
	for _, n := range []int{64, 512, 4096, 65536} {
		if m.DMACost(n) >= m.CopyCost(n) {
			t.Errorf("DMA cost %v >= copy cost %v for %d bytes; DMA should be cheaper",
				m.DMACost(n), m.CopyCost(n), n)
		}
	}
}

func TestOffloadCostsScale(t *testing.T) {
	m := Datacenter2019()
	if m.OffloadedFilterCost() <= m.FilterNS {
		t.Errorf("offloaded filter %v should cost more per element than CPU filter %v",
			m.OffloadedFilterCost(), m.FilterNS)
	}
	if m.OffloadedMapCost() <= m.MapNS {
		t.Errorf("offloaded map %v should cost more per element than CPU map %v",
			m.OffloadedMapCost(), m.MapNS)
	}
}

func TestCountersReset(t *testing.T) {
	var c Counters
	c.AddSyscall()
	c.AddCopy(100)
	c.AddDMA(50)
	c.Packets = 3
	c.Wakeups = 2
	c.WastedWakeups = 1
	c.Registrations = 4
	c.Reset()
	if c != (Counters{}) {
		t.Fatalf("Reset left counters non-zero: %+v", c)
	}
}

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddCopy(10)
	c.AddCopy(20)
	if c.BytesCopied != 30 {
		t.Fatalf("BytesCopied = %d, want 30", c.BytesCopied)
	}
	c.AddDMA(5)
	c.AddDMA(7)
	if c.BytesDMA != 12 {
		t.Fatalf("BytesDMA = %d, want 12", c.BytesDMA)
	}
	c.AddSyscall()
	c.AddSyscall()
	c.AddSyscall()
	if c.SyscallCrossings != 3 {
		t.Fatalf("SyscallCrossings = %d, want 3", c.SyscallCrossings)
	}
}
