// Elastic resharding: live repartition of the KV keyspace from N to M
// shards with bounded-staleness handoff over the cross-shard mesh.
//
// The protocol is generation-tagged ownership. A reshard publishes a new
// Topology{Gen, Old, New, Migrating} through an atomic pointer; each
// worker observes the flip on its next step, snapshots the keys it no
// longer owns under the New partition, and ships them to their new
// owners as OpMigrate records in bounded batches. While the migration
// drains, a key lives in exactly one of three places — the old owner's
// store, the (old→new) mesh edge, or the new owner's store — and the
// routing rules below locate it in at most two hops:
//
//   - a shard that HOLDS the key serves it (current owner, wherever the
//     sweep has got to);
//   - the old owner, on a miss, forwards to the new owner marked final:
//     a miss there is authoritative because the edge is a FIFO ring, so
//     any in-flight migrate record for the key arrived first;
//   - any other shard, on a miss, forwards to the old owner (who either
//     has it or performs the final hop).
//
// When every worker reports its sweep drained, the last one publishes
// the stable topology (Old == New, Migrating false) and routing
// collapses back to the one-hop steady state.
package kv

import (
	"context"
	"fmt"
	"time"

	"demikernel/internal/shard"
)

// Topology is one generation of the keyspace partition. Old and New are
// active shard counts; while Migrating they differ and both partitions
// participate in routing.
type Topology struct {
	Gen       uint64
	Old, New  int
	Migrating bool
}

// migRec ships one key/value record across the mesh during a reshard.
// The storedVal moves whole: its backing SGA travels with it and is
// freed by whichever shard ultimately discards the record.
type migRec struct {
	key string
	val storedVal
}

// migBatch bounds how many records a worker ships per step so the
// migration sweep shares the core fairly with live request service.
const migBatch = 64

// ErrResharding is returned by BeginReshard while a previous reshard is
// still draining — generations are serialized by design.
var ErrResharding = fmt.Errorf("kv: reshard already in progress")

// BeginReshard publishes a new keyspace generation repartitioning the
// active keyspace onto m shards. m must not exceed the provisioned
// worker count. The call only publishes; workers perform the handoff as
// they step, and Stable reports completion.
func (s *ShardedServer) BeginReshard(m int) error {
	t := s.topo.Load()
	if t.Migrating {
		return ErrResharding
	}
	if m < 1 || m > len(s.workers) {
		return fmt.Errorf("kv: reshard to %d shards outside [1,%d]", m, len(s.workers))
	}
	if m == t.New {
		return nil
	}
	s.migPending.Store(int32(len(s.workers)))
	s.topo.Store(&Topology{Gen: t.Gen + 1, Old: t.New, New: m, Migrating: true})
	return nil
}

// Stable reports whether the current generation has fully drained.
func (s *ShardedServer) Stable() bool { return !s.topo.Load().Migrating }

// Topology snapshots the current partition generation.
func (s *ShardedServer) Topology() Topology { return *s.topo.Load() }

// Generation returns the current keyspace generation number.
func (s *ShardedServer) Generation() uint64 { return s.topo.Load().Gen }

// Active returns the number of shards the keyspace is (being)
// partitioned onto — the New count while a migration drains.
func (s *ShardedServer) Active() int { return s.topo.Load().New }

// AwaitStable blocks until the current reshard generation drains or ctx
// expires. The workers must be running (Run, or concurrent Step calls);
// AwaitStable only watches.
func (s *ShardedServer) AwaitStable(ctx context.Context) error {
	for !s.Stable() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Microsecond):
		}
	}
	return nil
}

// pollTopology observes a generation flip: snapshot the keys this worker
// must ship out under the new partition, and — when this worker is
// retiring (index beyond the new active count) — close its accepted
// connections so clients fail over to the new layout immediately rather
// than idling on a shard RSS no longer feeds.
func (w *shardWorker) pollTopology() {
	t := w.srv.topo.Load()
	if t.Gen == w.gen {
		return
	}
	w.gen = t.Gen
	w.migDone = false
	w.migKeys = w.migKeys[:0]
	for k := range w.store {
		if KeyShard(k, t.New) != w.idx {
			w.migKeys = append(w.migKeys, k)
		}
	}
	if w.idx >= t.New {
		for conn := range w.conns {
			delete(w.conns, conn)
			w.lib.Close(conn) //nolint:errcheck // retiring; client redials
		}
	}
	if len(w.migKeys) == 0 {
		w.finishMigration()
	}
}

// stepMigration ships up to migBatch snapshot keys to their new owners.
// Send-before-delete inside one worker goroutine preserves the FIFO
// argument: any forward this worker later emits because the key is gone
// trails the migrate record on the same edge.
func (w *shardWorker) stepMigration() int {
	t := w.srv.topo.Load()
	if !t.Migrating || t.Gen != w.gen || w.migDone {
		return 0
	}
	n := 0
	for n < migBatch && len(w.migKeys) > 0 {
		k := w.migKeys[len(w.migKeys)-1]
		sv, ok := w.store[k]
		if !ok {
			// Deleted since the snapshot; nothing to move.
			w.migKeys = w.migKeys[:len(w.migKeys)-1]
			continue
		}
		dest := KeyShard(k, t.New)
		m := shard.Msg{Op: shard.OpMigrate, Seq: t.Gen, Payload: &migRec{key: k, val: sv}}
		if !w.group.Send(w.idx, dest, m) {
			// Edge full: stop here and retry next step. The key stays
			// served locally in the meantime.
			break
		}
		delete(w.store, k)
		w.ctr.keys.Add(-1)
		w.ctr.migratedOut.Add(1)
		w.ctr.busyVirt.Add(int64(w.meshHopCost()))
		w.migKeys = w.migKeys[:len(w.migKeys)-1]
		n++
	}
	if len(w.migKeys) == 0 {
		w.finishMigration()
	}
	return n
}

// finishMigration marks this worker's sweep drained; the last worker to
// drain publishes the stable topology.
func (w *shardWorker) finishMigration() {
	if w.migDone {
		return
	}
	w.migDone = true
	if w.srv.migPending.Add(-1) == 0 {
		t := w.srv.topo.Load()
		w.srv.topo.Store(&Topology{Gen: t.Gen, Old: t.New, New: t.New, Migrating: false})
	}
}

// route locates the shard that should serve key under the current
// topology. serveLocal means this worker executes the request; otherwise
// the request travels to next, and final marks the hop authoritative
// (the receiver executes unconditionally — a miss there is a true miss).
func (w *shardWorker) route(key string) (serveLocal bool, next int, final bool) {
	t := w.srv.topo.Load()
	oNew := KeyShard(key, t.New)
	if !t.Migrating || KeyShard(key, t.Old) == oNew {
		// Steady state, or ownership unchanged across the generations.
		if oNew == w.idx {
			return true, 0, false
		}
		return false, oNew, true
	}
	if _, ok := w.store[key]; ok {
		// Whoever holds the key serves it: the old owner pre-sweep, the
		// new owner post-handoff.
		return true, 0, false
	}
	oOld := KeyShard(key, t.Old)
	switch w.idx {
	case oOld:
		// Gone from the old owner: migrated (or never existed). The new
		// owner is authoritative either way — FIFO edge ordering puts
		// any in-flight migrate record ahead of this forward.
		return false, oNew, true
	default:
		// Entry shard (including oNew itself before the record lands):
		// ask the old owner first.
		return false, oOld, false
	}
}
