package queue

import (
	"errors"
	"testing"

	"demikernel/internal/sga"
	"demikernel/internal/simclock"
)

func TestFilterQueueCloseAndPump(t *testing.T) {
	model := simclock.Datacenter2019()
	inner := NewMemQueue(0)
	f := NewFilterQueue(inner, func(sga.SGA) bool { return true }, &model)
	if f.Pump() != 0 {
		t.Fatal("filter over mem queue should have no internal work")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	done, c := collect(t)
	f.Push(sga.New([]byte("x")), 0, done)
	if !errors.Is(c.Err, ErrClosed) {
		t.Fatalf("push after close err = %v", c.Err)
	}
}

func TestFilterDiscardedElementsFreed(t *testing.T) {
	model := simclock.Datacenter2019()
	inner := NewMemQueue(0)
	f := NewFilterQueue(inner, func(s sga.SGA) bool { return s.Bytes()[0] == 'K' }, &model)
	freed := 0
	pd, _ := collect(t)
	inner.Push(sga.New([]byte("drop")).WithFree(func() { freed++ }), 0, pd)
	pd2, _ := collect(t)
	inner.Push(sga.New([]byte("Keep")), 0, pd2)
	done, c := collect(t)
	f.Pop(done)
	if c.Err != nil || string(c.SGA.Bytes()) != "Keep" {
		t.Fatalf("pop: %v %q", c.Err, c.SGA.Bytes())
	}
	if freed != 1 {
		t.Fatalf("discarded element not freed: %d", freed)
	}
}

func TestMapQueueCloseAndPump(t *testing.T) {
	model := simclock.Datacenter2019()
	inner := NewMemQueue(0)
	m := NewMapQueue(inner, func(s sga.SGA) sga.SGA { return s }, &model)
	if m.Pump() != 0 {
		t.Fatal("map over mem queue should have no internal work")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSortQueuePushPassthrough(t *testing.T) {
	inner := NewMemQueue(0)
	s := NewSortQueue(inner, func(a, b sga.SGA) bool { return true }, 4)
	done, c := collect(t)
	s.Push(sga.New([]byte("via sorted")), 0, done)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if inner.Len() != 1 {
		t.Fatal("push did not reach the inner queue")
	}
}

func TestSortQueueBufferedAndClose(t *testing.T) {
	inner := NewMemQueue(0)
	s := NewSortQueue(inner, func(a, b sga.SGA) bool { return a.Bytes()[0] < b.Bytes()[0] }, 4)
	pd, _ := collect(t)
	inner.Push(sga.New([]byte{9}), 0, pd)
	s.Pump()
	if s.Buffered() != 1 {
		t.Fatalf("Buffered = %d", s.Buffered())
	}
	// A waiter blocked at close must fail with ErrClosed.
	done1, c1 := collect(t)
	s.Pop(done1) // consumes the buffered element
	done2, c2 := collect(t)
	s.Pop(done2) // waits
	if c1.Err != nil {
		t.Fatal(c1.Err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(c2.Err, ErrClosed) {
		t.Fatalf("waiter err = %v", c2.Err)
	}
	done3, c3 := collect(t)
	s.Pop(done3)
	if !errors.Is(c3.Err, ErrClosed) {
		t.Fatalf("pop after close err = %v", c3.Err)
	}
}

func TestSortQueuePumpAfterClose(t *testing.T) {
	inner := NewMemQueue(0)
	s := NewSortQueue(inner, func(a, b sga.SGA) bool { return true }, 4)
	s.Close()
	if got := s.Pump(); got != 0 {
		t.Fatalf("Pump after close = %d", got)
	}
}

func TestMergeQueueClose(t *testing.T) {
	a, b := NewMemQueue(0), NewMemQueue(0)
	m := NewMergeQueue(a, b, 2)
	done, c := collect(t)
	m.Pop(done) // waits
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(c.Err, ErrClosed) {
		t.Fatalf("waiter err = %v", c.Err)
	}
	done2, c2 := collect(t)
	m.Pop(done2)
	if !errors.Is(c2.Err, ErrClosed) {
		t.Fatalf("pop after close err = %v", c2.Err)
	}
	// Inners closed too: pushes fail.
	pd, pc := collect(t)
	a.Push(sga.New([]byte("x")), 0, pd)
	if !errors.Is(pc.Err, ErrClosed) {
		t.Fatalf("inner push err = %v", pc.Err)
	}
	if got := m.Pump(); got != 0 {
		t.Fatalf("Pump after close = %d", got)
	}
}

func TestMergeQueuePushErrorPropagates(t *testing.T) {
	a, b := NewMemQueue(0), NewMemQueue(0)
	b.Close()
	m := NewMergeQueue(a, b, 2)
	done, c := collect(t)
	m.Push(sga.New([]byte("x")), 0, done)
	if !errors.Is(c.Err, ErrClosed) {
		t.Fatalf("merged push err = %v (one inner closed)", c.Err)
	}
}

func TestCompleterOutstanding(t *testing.T) {
	c := NewCompleter()
	if c.Outstanding() != 0 {
		t.Fatal("fresh completer has tokens")
	}
	qt, done := c.NewToken()
	if c.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
	done(Completion{})
	c.TryWait(qt)
	if c.Outstanding() != 0 {
		t.Fatalf("Outstanding after consume = %d", c.Outstanding())
	}
}
