package failover

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/queue"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(Policy{MaxAttempts: 6, Base: time.Millisecond, Max: 4 * time.Millisecond, Seed: 1})
	want := []time.Duration{1, 2, 4, 4, 4, 4} // ms: doubling, then capped
	for i, w := range want {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("iterator dried up at attempt %d", i)
		}
		if d != w*time.Millisecond {
			t.Fatalf("delay %d = %v, want %v", i, d, w*time.Millisecond)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("iterator outlived MaxAttempts")
	}
	if b.Attempts() != 6 {
		t.Fatalf("Attempts = %d, want 6", b.Attempts())
	}
	b.Reset()
	if d, ok := b.Next(); !ok || d != time.Millisecond {
		t.Fatalf("post-Reset Next = %v, %v", d, ok)
	}
}

// Jitter must decorrelate without ever collapsing a delay to zero: each
// delay lands in [1-J/2, 1+J/2) of its nominal value.
func TestBackoffJitterBounds(t *testing.T) {
	pol := Policy{MaxAttempts: 200, Base: 10 * time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0.5, Seed: 7}
	b := NewBackoff(pol)
	lo := time.Duration(float64(10*time.Millisecond) * 0.75)
	hi := time.Duration(float64(10*time.Millisecond) * 1.25)
	varied := false
	var prev time.Duration
	for i := 0; i < 200; i++ {
		d, ok := b.Next()
		if !ok {
			t.Fatal("iterator dried up early")
		}
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		if i > 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("jitter never varied the delay")
	}
}

func TestBackoffIsSeededDeterministic(t *testing.T) {
	pol := DefaultPolicy()
	a, b := NewBackoff(pol), NewBackoff(pol)
	for i := 0; i < pol.MaxAttempts; i++ {
		da, _ := a.Next()
		db, _ := b.Next()
		if da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, da, db)
		}
	}
}

func TestRetriableClassification(t *testing.T) {
	for _, err := range []error{
		core.ErrPeerDead,
		core.ErrLocalReset,
		core.ErrWaitTimeout, // the silent-peer liveness signal
		queue.ErrClosed,
		fmt.Errorf("wrapped: %w", core.ErrPeerDead),
	} {
		if !Retriable(err) {
			t.Errorf("Retriable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		nil,
		errors.New("bad request"),
		core.ErrNotSupported,
		core.ErrBadQD,
	} {
		if Retriable(err) {
			t.Errorf("Retriable(%v) = true, want false", err)
		}
	}
}
