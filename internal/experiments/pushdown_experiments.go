package experiments

import (
	"bytes"
	"fmt"

	demi "demikernel"
	"demikernel/internal/libos/catfish"
	"demikernel/internal/metrics"
	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

// runE18 measures storage pushdown: BPF-style compute in the NVMe
// completion path. A depth-N index lookup is the worst case for the
// kernel-bypass storage interface — every hop is a device round trip
// that exists only to compute the next LBA. Pushing the step function
// into the device's completion path collapses the traversal to a single
// app↔libOS crossing at any depth; the CPU fallback (the paper's
// "default to using the CPU if necessary") pays one crossing per hop.
func runE18(seed int64) (*Result, error) {
	res := &Result{}
	depths := []int{1, 2, 4, 8}

	tbl := metrics.NewTable("E18: depth-N GET, app-level traversal vs device pushdown",
		"index depth", "keys", "host crossings/GET", "pushdown crossings/GET",
		"crossing ratio", "host p50", "pushdown p50", "latency ratio")

	type outcome struct {
		depth                int
		hostCross, pushCross float64
		hostP50, pushP50     simclock.Lat
		valuesAgree          bool
		resubmitsPerGet      float64
		hopsSavedPerGet      float64
		inflightAfter        int64
		expectedHops         int
	}
	var outcomes []outcome

	for _, depth := range depths {
		nKeys := 1 << (depth + 1) // fanout 2: 2^(d+1) keys build depth d
		var pairs []spdk.KV
		for i := 0; i < nKeys; i++ {
			pairs = append(pairs, spdk.KV{
				Key: []byte(fmt.Sprintf("key-%05d", i)),
				Val: []byte(fmt.Sprintf("value-%d", i)),
			})
		}

		type rig struct {
			tr *catfish.Transport
			q  *catfish.LookupQueue
		}
		open := func(pushdown bool, seedOff int64) (*rig, *spdk.Index, error) {
			c := demi.NewCluster(seed + seedOff)
			node, err := c.Spawn(demi.Catfish, demi.WithBlocks(0))
			if err != nil {
				return nil, nil, err
			}
			tr := node.Catfish
			idx, err := tr.BuildIndex(pairs, 2)
			if err != nil {
				return nil, nil, err
			}
			q, err := tr.OpenLookup(idx, offload.IndexLookup(), catfish.LookupConfig{Pushdown: pushdown})
			if err != nil {
				return nil, nil, err
			}
			return &rig{tr: tr, q: q}, idx, nil
		}
		pd, idx, err := open(true, 0)
		if err != nil {
			return nil, err
		}
		host, _, err := open(false, 1)
		if err != nil {
			return nil, err
		}
		if idx.Depth != depth {
			return nil, fmt.Errorf("E18: built depth %d, want %d", idx.Depth, depth)
		}

		get := func(r *rig, key []byte) ([]byte, simclock.Lat, error) {
			s := r.tr.AllocSGA(len(key))
			copy(s.Segments[0].Buf, key)
			r.q.Push(s, 0, func(queue.Completion) {})
			var c queue.Completion
			got := false
			r.q.Pop(func(qc queue.Completion) { c = qc; got = true })
			for i := 0; !got; i++ {
				r.tr.Poll()
				if i > 1_000_000 {
					return nil, 0, fmt.Errorf("E18: lookup hung")
				}
			}
			if c.Err != nil {
				return nil, 0, c.Err
			}
			v := append([]byte(nil), c.SGA.Bytes()...)
			c.SGA.Free()
			return v, c.Cost, nil
		}

		var pdH, hostH metrics.Histogram
		agree := true
		for i := 0; i < nKeys; i++ {
			key := []byte(fmt.Sprintf("key-%05d", i))
			v1, c1, err := get(pd, key)
			if err != nil {
				return nil, err
			}
			v2, c2, err := get(host, key)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(v1, v2) || !bytes.Equal(v1, pairs[i].Val) {
				agree = false
			}
			pdH.Record(c1)
			hostH.Record(c2)
		}

		gets := float64(nKeys)
		ps := pd.q.Stats()
		hs := host.q.Stats()
		devStats := pd.tr.Device().PushdownStats()
		o := outcome{
			depth:           depth,
			hostCross:       float64(hs.Crossings) / gets,
			pushCross:       float64(ps.Crossings) / gets,
			hostP50:         hostH.Percentile(50),
			pushP50:         pdH.Percentile(50),
			valuesAgree:     agree,
			resubmitsPerGet: float64(devStats.Resubmits) / gets,
			hopsSavedPerGet: float64(devStats.HopsSaved) / gets,
			inflightAfter:   devStats.Inflight,
			expectedHops:    depth + 1,
		}
		outcomes = append(outcomes, o)
		tbl.AddRow(depth, nKeys, o.hostCross, o.pushCross,
			fmt.Sprintf("%.1fx", o.hostCross/o.pushCross),
			o.hostP50, o.pushP50, metrics.Ratio(o.hostP50, o.pushP50))
	}
	res.Tables = append(res.Tables, tbl)

	// Telemetry view of the deepest run: the spdk.pushdown.* counters
	// are the evidence that hops happened device-side.
	deepest := outcomes[len(outcomes)-1]
	tbl2 := metrics.NewTable("E18: spdk.pushdown.* accounting at depth 8",
		"metric", "per GET", "meaning")
	tbl2.AddRow("resubmits", deepest.resubmitsPerGet, "device-internal reads that never crossed to the host")
	tbl2.AddRow("hops_saved", deepest.hopsSavedPerGet, "host round trips avoided vs app-level traversal")
	tbl2.AddRow("inflight", float64(deepest.inflightAfter), "traversals still device-side after drain (must be 0)")
	res.Tables = append(res.Tables, tbl2)

	for _, o := range outcomes {
		res.check(fmt.Sprintf("depth %d: pushdown GET is 1 crossing", o.depth),
			o.pushCross == 1, "crossings/GET = %.2f", o.pushCross)
		res.check(fmt.Sprintf("depth %d: host traversal pays depth+1 crossings", o.depth),
			o.hostCross == float64(o.expectedHops), "crossings/GET = %.2f, want %d", o.hostCross, o.expectedHops)
		res.check(fmt.Sprintf("depth %d: values byte-identical across modes", o.depth),
			o.valuesAgree, "pushdown == host == expected")
		if o.depth >= 4 {
			res.check(fmt.Sprintf("depth %d: >=3x fewer crossings with pushdown", o.depth),
				o.hostCross >= 3*o.pushCross, "%.2f vs %.2f", o.hostCross, o.pushCross)
			res.check(fmt.Sprintf("depth %d: pushdown lowers GET latency", o.depth),
				o.pushP50 < o.hostP50, "%v vs %v", o.pushP50, o.hostP50)
		}
	}
	deep := outcomes[len(outcomes)-1]
	res.check("hops happen device-side (resubmits = depth per GET)",
		deep.resubmitsPerGet == float64(deep.depth), "%.2f resubmits/GET at depth %d", deep.resubmitsPerGet, deep.depth)
	res.check("no traversal leaked", deep.inflightAfter == 0, "inflight = %d", deep.inflightAfter)
	return res, nil
}
