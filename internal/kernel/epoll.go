package kernel

import (
	"sync"

	"demikernel/internal/simclock"
)

// Epoll models the POSIX readiness API with its classic multi-waiter
// behaviour: when an event arrives, every thread blocked in Wait is woken
// (the kernel cannot know which waiter will end up consuming the data),
// one of them wins the ready set, and the rest go back to sleep having
// burnt a wakeup. Section 4.4 contrasts this with Demikernel qtokens,
// where "wait wakes exactly one thread on each pop completion, so there
// are never wasted wake ups".
type Epoll struct {
	k *Kernel

	mu      sync.Mutex
	cond    *sync.Cond
	watched map[FD]bool
	ready   map[FD]bool
	closed  bool
}

// EpollCreate creates an epoll instance.
func (k *Kernel) EpollCreate() *Epoll {
	k.syscall()
	ep := &Epoll{
		k:       k,
		watched: make(map[FD]bool),
		ready:   make(map[FD]bool),
	}
	ep.cond = sync.NewCond(&ep.mu)
	k.mu.Lock()
	k.epolls = append(k.epolls, ep)
	k.mu.Unlock()
	return ep
}

// Add registers a descriptor for readiness notification.
func (ep *Epoll) Add(fd FD) {
	ep.k.syscall()
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.watched[fd] = true
}

// Wait blocks until at least one watched descriptor is ready and returns
// the ready set (clearing it — the winning thread takes everything).
// The returned cost charges the syscall plus one scheduler wakeup. ok is
// false when the instance was closed.
//
// Note the deliberate herd: every waiter is woken per event delivery; the
// losers record wasted wakeups in the kernel counters.
func (ep *Epoll) Wait() (fds []FD, cost simclock.Lat, ok bool) {
	cost = ep.k.syscall()
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if ep.closed {
			return nil, cost, false
		}
		if len(ep.ready) > 0 {
			for fd := range ep.ready {
				fds = append(fds, fd)
			}
			ep.ready = make(map[FD]bool)
			return fds, cost, true
		}
		ep.cond.Wait()
		// Woken. Was it for nothing?
		ep.k.mu.Lock()
		ep.k.ctr.Wakeups++
		if len(ep.ready) == 0 && !ep.closed {
			ep.k.ctr.WastedWakeups++
		}
		ep.k.mu.Unlock()
		cost += ep.k.model.WakeupNS
	}
}

// TryWait polls readiness without blocking (the shape a busy-polling
// server uses).
func (ep *Epoll) TryWait() ([]FD, simclock.Lat) {
	cost := ep.k.syscall()
	ep.k.refreshReadiness(ep)
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.ready) == 0 {
		return nil, cost
	}
	fds := make([]FD, 0, len(ep.ready))
	for fd := range ep.ready {
		fds = append(fds, fd)
	}
	ep.ready = make(map[FD]bool)
	return fds, cost
}

// Close wakes all waiters with ok=false.
func (ep *Epoll) Close() {
	ep.mu.Lock()
	ep.closed = true
	ep.mu.Unlock()
	ep.cond.Broadcast()
}

// MarkReady injects readiness for a descriptor directly. Experiments use
// it to model completion arrival without a full network round trip.
func (ep *Epoll) MarkReady(fd FD) {
	ep.mu.Lock()
	ep.ready[fd] = true
	ep.mu.Unlock()
	ep.cond.Broadcast() // wake-all: the herd
}

// refreshReadiness recomputes readiness for every watched descriptor of
// one epoll instance.
func (k *Kernel) refreshReadiness(ep *Epoll) {
	ep.mu.Lock()
	watched := make([]FD, 0, len(ep.watched))
	for fd := range ep.watched {
		watched = append(watched, fd)
	}
	ep.mu.Unlock()

	var newlyReady []FD
	for _, fd := range watched {
		if k.fdReadable(fd) {
			newlyReady = append(newlyReady, fd)
		}
	}
	if len(newlyReady) == 0 {
		return
	}
	ep.mu.Lock()
	for _, fd := range newlyReady {
		ep.ready[fd] = true
	}
	ep.mu.Unlock()
	ep.cond.Broadcast()
}

// fdReadable computes level-triggered readiness.
func (k *Kernel) fdReadable(fd FD) bool {
	e, err := k.lookup(fd)
	if err != nil {
		return false
	}
	switch e.kind {
	case fdTCPConn:
		return e.conn.Readable()
	case fdTCPListener:
		return e.listener.Pending() > 0
	case fdPipeRead:
		k.mu.Lock()
		defer k.mu.Unlock()
		return len(e.pipe.buf) > 0 || e.pipe.wrClosed
	default:
		return false
	}
}

// deliverEvents refreshes readiness on all epoll instances; called from
// Poll after the network stack ran.
func (k *Kernel) deliverEvents() {
	k.mu.Lock()
	eps := append([]*Epoll(nil), k.epolls...)
	k.mu.Unlock()
	for _, ep := range eps {
		k.refreshReadiness(ep)
	}
}
