package catmint_test

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	demi "demikernel"
	"demikernel/internal/libos/catmint"
)

// oneSidedRig builds a connected pair and returns the client's one-sided
// handle for the connection, plus a server window whose rkey was
// exchanged over an ordinary queue message (as a real application would).
func oneSidedRig(t *testing.T, seed int64, windowLen int) (
	cli *demi.Node, handle *catmint.OneSided, window *catmint.Window, cleanup func()) {
	t.Helper()
	c, srv, cliNode, clean := pair(t, seed, 0)
	cqd, sqd := connect(t, c, srv, cliNode, 7)

	window = srv.Catmint.ExposeMemory(windowLen)
	// The server advertises (rkey, len) in-band.
	adv := make([]byte, 8)
	binary.BigEndian.PutUint32(adv[0:4], window.RKey())
	binary.BigEndian.PutUint32(adv[4:8], uint32(window.Len()))
	if _, err := srv.BlockingPush(sqd, demi.NewSGA(adv)); err != nil {
		t.Fatal(err)
	}
	comp, err := cliNode.BlockingPop(cqd)
	if err != nil {
		t.Fatal(err)
	}
	gotKey := binary.BigEndian.Uint32(comp.SGA.Bytes()[0:4])
	if gotKey != window.RKey() {
		t.Fatalf("rkey exchange corrupted: %d vs %d", gotKey, window.RKey())
	}

	// The one-sided handle wraps the client's connected endpoint. The
	// endpoint lives behind the core QD table; the transport finds it
	// through the Endpoint interface value stored there — the test digs
	// it out via the echo-style QD it already holds.
	ep, err := cliNode.EndpointOf(cqd)
	if err != nil {
		t.Fatal(err)
	}
	handle, err = cliNode.Catmint.OneSided(ep)
	if err != nil {
		t.Fatal(err)
	}
	return cliNode, handle, window, clean
}

func TestOneSidedWriteSilentOnServer(t *testing.T) {
	_, handle, window, cleanup := oneSidedRig(t, 101, 256)
	defer cleanup()

	done := make(chan catmint.WriteResult, 1)
	payload := []byte("written with no server code")
	if err := handle.Write(payload, window.RKey(), 16, func(r catmint.WriteResult) {
		done <- r
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Cost == 0 {
			t.Fatal("one-sided write carried no cost")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write completion never arrived")
	}
	if !bytes.Equal(window.Bytes()[16:16+len(payload)], payload) {
		t.Fatalf("window = %q", window.Bytes()[:64])
	}
}

func TestOneSidedRead(t *testing.T) {
	_, handle, window, cleanup := oneSidedRig(t, 102, 128)
	defer cleanup()
	copy(window.Bytes()[32:], "server-resident data")

	done := make(chan catmint.ReadResult, 1)
	if err := handle.Read(20, window.RKey(), 32, func(r catmint.ReadResult) {
		done <- r
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if string(r.Data) != "server-resident data" {
			t.Fatalf("read %q", r.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read completion never arrived")
	}
}

func TestOneSidedAccessAfterRevoke(t *testing.T) {
	_, handle, window, cleanup := oneSidedRig(t, 103, 64)
	defer cleanup()
	window.Revoke()
	done := make(chan catmint.WriteResult, 1)
	if err := handle.Write([]byte("late"), window.RKey(), 0, func(r catmint.WriteResult) {
		done <- r
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Err == nil {
			t.Fatal("write to revoked window succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no completion for revoked access")
	}
}

func TestOneSidedOutOfBounds(t *testing.T) {
	_, handle, window, cleanup := oneSidedRig(t, 104, 32)
	defer cleanup()
	done := make(chan catmint.WriteResult, 1)
	if err := handle.Write(make([]byte, 64), window.RKey(), 0, func(r catmint.WriteResult) {
		done <- r
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.Err == nil {
			t.Fatal("out-of-bounds write succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no completion")
	}
}
