// Package shard provides the cross-shard communication fabric for a
// sharded (share-nothing) libOS: bounded lock-free single-producer/
// single-consumer rings and an any-to-any mesh of them (Group).
//
// The paper's §3.1 argument — and the reason this package exists — is
// that kernel-bypass datapaths scale by *not* sharing: RSS steers each
// flow to one queue, one worker owns that queue's netstack, connections,
// and buffers, and nothing on the per-packet path crosses cores. What
// remains is the rare traffic between workers (control-plane ops, accept
// redistribution, forwarding a request that landed on the wrong shard),
// and that traffic must not reintroduce locks. An SPSC ring needs no
// CAS, no lock, and no shared cache line between its two ends beyond the
// head/tail indices — which are padded apart here.
package shard

import "sync/atomic"

// cacheLine is the assumed coherence granule. The pads below keep the
// producer-owned and consumer-owned index words on distinct lines so the
// two sides of a ring never write-share.
const cacheLine = 64

// Ring is a bounded lock-free SPSC ring. Exactly one goroutine may call
// Push (the producer) and exactly one may call Pop (the consumer); the
// Group mesh enforces this by dedicating one ring per (from, to) pair.
type Ring[T any] struct {
	buf  []T
	mask uint64
	_    [cacheLine]byte     //nolint:unused // pad
	head atomic.Uint64       // next slot to pop; written only by the consumer
	_    [cacheLine - 8]byte //nolint:unused // pad
	tail atomic.Uint64       // next slot to push; written only by the producer
	_    [cacheLine - 8]byte //nolint:unused // pad
}

// NewRing returns an SPSC ring holding up to capacity elements
// (rounded up to a power of two, minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Push appends v; it reports false when the ring is full (bounded:
// backpressure is the caller's problem, the ring never blocks or grows).
// Producer-side only.
func (r *Ring[T]) Push(v T) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() > r.mask {
		return false // full
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1) // release: the element write happens-before
	return true
}

// Pop removes and returns the oldest element. Consumer-side only.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	head := r.head.Load()
	if head == r.tail.Load() {
		return zero, false // empty
	}
	v := r.buf[head&r.mask]
	r.buf[head&r.mask] = zero // drop the reference for GC
	r.head.Store(head + 1)
	return v, true
}

// Len reports the current occupancy (approximate under concurrency).
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap reports the ring's capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }
