package rdma

import (
	"bytes"
	"testing"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

var (
	macA = fabric.MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = fabric.MAC{0x02, 0, 0, 0, 0, 0xB}
)

type rig struct {
	a, b *Device
}

func newRig(t *testing.T) *rig {
	t.Helper()
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 11)
	return &rig{a: New(&model, sw, macA), b: New(&model, sw, macB)}
}

func (r *rig) pump() {
	for r.a.Poll()+r.b.Poll() > 0 {
	}
}

// connect builds a connected QP pair plus per-side PD/CQs.
func (r *rig) connect(t *testing.T) (cli, srv *QP, cliPD, srvPD *PD, cliSCQ, cliRCQ, srvSCQ, srvRCQ *CQ) {
	t.Helper()
	srvPD = r.b.AllocPD()
	srvSCQ, srvRCQ = r.b.CreateCQ(), r.b.CreateCQ()
	l, err := r.b.Listen(7, srvPD, srvSCQ, srvRCQ)
	if err != nil {
		t.Fatal(err)
	}
	cliPD = r.a.AllocPD()
	cliSCQ, cliRCQ = r.a.CreateCQ(), r.a.CreateCQ()
	cli = r.a.Connect(macB, 7, cliPD, cliSCQ, cliRCQ)
	r.pump()
	if !cli.Connected() {
		t.Fatal("client QP not connected")
	}
	srv, ok := l.Accept()
	if !ok {
		t.Fatal("no accepted QP")
	}
	return
}

func TestConnectionSetup(t *testing.T) {
	r := newRig(t)
	cli, srv, _, _, _, _, _, _ := r.connect(t)
	if cli.Num() == srv.Num() && false {
		t.Fatal("impossible")
	}
	if !srv.Connected() {
		t.Fatal("server QP not connected")
	}
}

func TestSendRecv(t *testing.T) {
	r := newRig(t)
	cli, srv, cliPD, srvPD, cliSCQ, _, _, srvRCQ := r.connect(t)

	msg := []byte("rdma two-sided send")
	sendBuf := cliPD.RegisterMemory(append([]byte(nil), msg...))
	recvBuf := srvPD.RegisterMemory(make([]byte, 64))

	if err := srv.PostRecv(42, Sge{MR: recvBuf, Off: 0, Len: 64}); err != nil {
		t.Fatal(err)
	}
	if err := cli.PostSend(7, Sge{MR: sendBuf, Off: 0, Len: len(msg)}); err != nil {
		t.Fatal(err)
	}
	r.pump()

	rwc := srvRCQ.Poll(8)
	if len(rwc) != 1 || rwc[0].Status != StatusSuccess || rwc[0].WRID != 42 {
		t.Fatalf("recv completions: %+v", rwc)
	}
	if !bytes.Equal(recvBuf.Bytes()[:rwc[0].Len], msg) {
		t.Fatalf("payload = %q", recvBuf.Bytes()[:rwc[0].Len])
	}
	if rwc[0].Cost == 0 {
		t.Fatal("no virtual cost on recv completion")
	}
	swc := cliSCQ.Poll(8)
	if len(swc) != 1 || swc[0].Status != StatusSuccess || swc[0].WRID != 7 {
		t.Fatalf("send completions: %+v", swc)
	}
}

func TestRNRWhenNoRecvPosted(t *testing.T) {
	// The paper: "allocating too few buffers causes communication to
	// fail."
	r := newRig(t)
	cli, _, cliPD, _, cliSCQ, _, _, _ := r.connect(t)
	sendBuf := cliPD.RegisterMemory([]byte("nobody home"))
	if err := cli.PostSend(1, Sge{MR: sendBuf, Off: 0, Len: sendBuf.Len()}); err != nil {
		t.Fatal(err)
	}
	r.pump()
	wc := cliSCQ.Poll(8)
	if len(wc) != 1 || wc[0].Status != StatusRNR {
		t.Fatalf("want RNR completion, got %+v", wc)
	}
	if r.b.Stats().RNRNaks != 1 {
		t.Fatalf("RNRNaks = %d", r.b.Stats().RNRNaks)
	}
}

func TestLenErrWhenRecvTooSmall(t *testing.T) {
	// "Receivers must allocate enough buffers of the right size."
	r := newRig(t)
	cli, srv, cliPD, srvPD, cliSCQ, _, _, srvRCQ := r.connect(t)
	sendBuf := cliPD.RegisterMemory(make([]byte, 128))
	recvBuf := srvPD.RegisterMemory(make([]byte, 16))
	srv.PostRecv(9, Sge{MR: recvBuf, Off: 0, Len: 16})
	cli.PostSend(8, Sge{MR: sendBuf, Off: 0, Len: 128})
	r.pump()
	if wc := cliSCQ.Poll(8); len(wc) != 1 || wc[0].Status != StatusLenErr {
		t.Fatalf("sender WC: %+v", wc)
	}
	if wc := srvRCQ.Poll(8); len(wc) != 1 || wc[0].Status != StatusLenErr {
		t.Fatalf("receiver WC: %+v", wc)
	}
}

func TestUnregisteredBufferRejected(t *testing.T) {
	r := newRig(t)
	cli, _, cliPD, _, _, _, _, _ := r.connect(t)
	mr := cliPD.RegisterMemory(make([]byte, 8))
	mr.Deregister()
	if err := cli.PostSend(1, Sge{MR: mr, Off: 0, Len: 8}); err == nil {
		t.Fatal("send from deregistered MR accepted")
	}
	if err := cli.PostSend(1, Sge{MR: nil, Off: 0, Len: 8}); err == nil {
		t.Fatal("send with nil MR accepted")
	}
}

func TestSgeBoundsChecked(t *testing.T) {
	r := newRig(t)
	cli, _, cliPD, _, _, _, _, _ := r.connect(t)
	mr := cliPD.RegisterMemory(make([]byte, 8))
	if err := cli.PostSend(1, Sge{MR: mr, Off: 4, Len: 8}); err == nil {
		t.Fatal("out-of-bounds sge accepted")
	}
}

func TestOneSidedWrite(t *testing.T) {
	r := newRig(t)
	cli, _, cliPD, srvPD, cliSCQ, _, _, srvRCQ := r.connect(t)

	remote := srvPD.RegisterMemory(make([]byte, 64))
	local := cliPD.RegisterMemory([]byte("one-sided write!"))

	if err := cli.PostWrite(5, Sge{MR: local, Off: 0, Len: local.Len()}, remote.RKey(), 8); err != nil {
		t.Fatal(err)
	}
	r.pump()
	if wc := cliSCQ.Poll(8); len(wc) != 1 || wc[0].Status != StatusSuccess || wc[0].Op != OpWrite {
		t.Fatalf("write WC: %+v", wc)
	}
	if !bytes.Equal(remote.Bytes()[8:8+local.Len()], local.Bytes()) {
		t.Fatalf("remote memory = %q", remote.Bytes())
	}
	// One-sided means silent on the remote: no receive completion.
	if wc := srvRCQ.Poll(8); len(wc) != 0 {
		t.Fatalf("remote saw completions for a one-sided write: %+v", wc)
	}
}

func TestOneSidedRead(t *testing.T) {
	r := newRig(t)
	cli, _, cliPD, srvPD, cliSCQ, _, _, _ := r.connect(t)
	remote := srvPD.RegisterMemory([]byte("remote content here"))
	local := cliPD.RegisterMemory(make([]byte, 6))
	if err := cli.PostRead(3, Sge{MR: local, Off: 0, Len: 6}, remote.RKey(), 7, 6); err != nil {
		t.Fatal(err)
	}
	r.pump()
	wc := cliSCQ.Poll(8)
	if len(wc) != 1 || wc[0].Status != StatusSuccess || wc[0].Op != OpRead {
		t.Fatalf("read WC: %+v", wc)
	}
	if string(local.Bytes()) != "conten" {
		t.Fatalf("read %q", local.Bytes())
	}
}

func TestRemoteAccessViolation(t *testing.T) {
	r := newRig(t)
	cli, _, cliPD, srvPD, cliSCQ, _, _, _ := r.connect(t)
	remote := srvPD.RegisterMemory(make([]byte, 16))
	local := cliPD.RegisterMemory(make([]byte, 64))
	// Write beyond the registered region.
	cli.PostWrite(1, Sge{MR: local, Off: 0, Len: 64}, remote.RKey(), 0)
	r.pump()
	if wc := cliSCQ.Poll(8); len(wc) != 1 || wc[0].Status != StatusRemoteAccess {
		t.Fatalf("WC: %+v", wc)
	}
	// Bogus rkey.
	cli.PostWrite(2, Sge{MR: local, Off: 0, Len: 4}, 0xdeadbeef, 0)
	r.pump()
	if wc := cliSCQ.Poll(8); len(wc) != 1 || wc[0].Status != StatusRemoteAccess {
		t.Fatalf("WC: %+v", wc)
	}
	if r.b.Stats().AccessNaks != 2 {
		t.Fatalf("AccessNaks = %d", r.b.Stats().AccessNaks)
	}
}

func TestSendBeforeConnectFails(t *testing.T) {
	r := newRig(t)
	pd := r.a.AllocPD()
	scq, rcq := r.a.CreateCQ(), r.a.CreateCQ()
	qp := r.a.Connect(macB, 99, pd, scq, rcq) // nobody listening
	mr := pd.RegisterMemory(make([]byte, 4))
	if err := qp.PostSend(1, Sge{MR: mr, Off: 0, Len: 4}); err != ErrQPState {
		t.Fatalf("err = %v, want ErrQPState", err)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	r := newRig(t)
	cli, srv, cliPD, srvPD, cliSCQ, _, _, srvRCQ := r.connect(t)
	const n = 50
	recvBuf := srvPD.RegisterMemory(make([]byte, n*8))
	for i := 0; i < n; i++ {
		srv.PostRecv(uint64(i), Sge{MR: recvBuf, Off: i * 8, Len: 8})
	}
	sendBuf := cliPD.RegisterMemory(make([]byte, 8))
	for i := 0; i < n; i++ {
		copy(sendBuf.Bytes(), []byte{byte(i), 0, 0, 0, 0, 0, 0, byte(i)})
		if err := cli.PostSend(uint64(i), Sge{MR: sendBuf, Off: 0, Len: 8}); err != nil {
			t.Fatal(err)
		}
		r.pump() // serialise so the shared send buffer can be reused
	}
	wcs := srvRCQ.Poll(0)
	if len(wcs) != n {
		t.Fatalf("got %d recv completions, want %d", len(wcs), n)
	}
	for i, wc := range wcs {
		if wc.WRID != uint64(i) || wc.Status != StatusSuccess {
			t.Fatalf("wc[%d] = %+v", i, wc)
		}
		if recvBuf.Bytes()[i*8] != byte(i) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	if got := cliSCQ.Poll(0); len(got) != n {
		t.Fatalf("send completions = %d", len(got))
	}
}

func TestPinnedBytesAccounting(t *testing.T) {
	r := newRig(t)
	pd := r.a.AllocPD()
	mr := pd.RegisterMemory(make([]byte, 1024))
	if got := r.a.Stats().PinnedBytes; got != 1024 {
		t.Fatalf("pinned = %d", got)
	}
	mr.Deregister()
	if got := r.a.Stats().PinnedBytes; got != 0 {
		t.Fatalf("pinned after dereg = %d", got)
	}
}

func TestRegistrationCounted(t *testing.T) {
	r := newRig(t)
	pd := r.a.AllocPD()
	for i := 0; i < 5; i++ {
		pd.RegisterMemory(make([]byte, 64))
	}
	if got := r.a.Stats().Registrations; got != 5 {
		t.Fatalf("Registrations = %d", got)
	}
	if r.a.RegistrationCost() == 0 {
		t.Fatal("registration must carry a cost")
	}
}

func TestPostedRecvCount(t *testing.T) {
	r := newRig(t)
	_, srv, _, srvPD, _, _, _, _ := r.connect(t)
	mr := srvPD.RegisterMemory(make([]byte, 64))
	srv.PostRecv(1, Sge{MR: mr, Off: 0, Len: 32})
	srv.PostRecv(2, Sge{MR: mr, Off: 32, Len: 32})
	if got := srv.PostedRecvs(); got != 2 {
		t.Fatalf("PostedRecvs = %d", got)
	}
}
