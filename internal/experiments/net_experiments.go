package experiments

import (
	"bytes"
	"fmt"
	"strings"

	demi "demikernel"
	"demikernel/internal/fabric"
	"demikernel/internal/metrics"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// rttSamples is the per-point sample count for latency experiments.
const rttSamples = 30

// runE1 reproduces Figure 1: the same echo over the legacy kernel path
// and over the kernel-bypass libOS, on an identical simulated wire.
func runE1(seed int64) (*Result, error) {
	res := &Result{}
	sizes := []int{64, 1024, 4096, 16384}
	tbl := metrics.NewTable("E1: echo RTT, kernel path vs kernel-bypass path",
		"msg bytes", "kernel p50", "bypass p50", "kernel/bypass", "kernel syscalls/req", "bypass syscalls/req")
	tbl.Note = "virtual latency from the documented cost model; both paths share the wire"

	var kernel4k, bypass4k simclock.Lat
	var counterTbl *metrics.Table
	for _, size := range sizes {
		kr, err := newEchoRig("catnap", seed, 0)
		if err != nil {
			return nil, err
		}
		kr.srvNode.Kernel.ResetCounters()
		kr.cliNode.Kernel.ResetCounters()
		kh, err := kr.measureEcho(size, rttSamples)
		if err != nil {
			kr.close()
			return nil, err
		}
		cliSyscalls := kr.cliNode.Kernel.Counters().SyscallCrossings
		kr.close()

		br, err := newEchoRig("catnip", seed, 0)
		if err != nil {
			return nil, err
		}
		// At the representative 4KB point, watch the bypass run through
		// the telemetry registry: snapshot every layer's counters before
		// and after, and report the per-layer activity the echo generated.
		var before telemetry.Snapshot
		reg := telemetry.NewRegistry()
		if size == 4096 {
			br.cluster.Switch.RegisterTelemetry(reg, "fabric")
			br.srvNode.RegisterTelemetry(reg, "server")
			br.cliNode.RegisterTelemetry(reg, "client")
			before = reg.Snapshot()
		}
		bh, err := br.measureEcho(size, rttSamples)
		if err != nil {
			br.close()
			return nil, err
		}
		if size == 4096 {
			diff := reg.Snapshot().Diff(before).NonZero()
			counterTbl = metrics.NewTable("E1: per-layer counters across the 4KB bypass echo run ("+
				fmt.Sprintf("%d round trips)", rttSamples), "counter", "delta")
			counterTbl.Note = "telemetry.Registry diff over the measured window; the qtoken span path " +
				"and this registry are disabled by default and cost zero allocations on the hot path " +
				"(see hotpath_alloc_test.go and README §Hot-path performance)"
			for _, smp := range diff.Samples {
				// Instantaneous depth gauges (in-flight tokens, ring
				// occupancy, run-queue length) depend on where the
				// background pollers happen to be when the snapshot
				// lands; only monotonic activity counters are
				// deterministic across runs, so only those are reported.
				if instantaneousGauge(smp.Name) {
					continue
				}
				counterTbl.AddRow(smp.Name, smp.Value)
			}
		}
		br.close()

		kp50, bp50 := kh.Percentile(50), bh.Percentile(50)
		if size == 4096 {
			kernel4k, bypass4k = kp50, bp50
		}
		tbl.AddRow(size, kp50, bp50, metrics.Ratio(kp50, bp50),
			fmt.Sprintf("%.1f", float64(cliSyscalls)/float64(rttSamples)), "0.0")
	}
	res.Tables = append(res.Tables, tbl)
	if counterTbl != nil {
		res.Tables = append(res.Tables, counterTbl)
	}

	res.check("bypass wins at 4KB", bypass4k < kernel4k,
		"bypass p50 %v < kernel p50 %v", bypass4k, kernel4k)
	res.check("kernel overhead is material (>=1.3x at 4KB)",
		float64(kernel4k) >= 1.3*float64(bypass4k),
		"ratio %.2f", float64(kernel4k)/float64(bypass4k))
	return res, nil
}

// instantaneousGauge reports whether a registry sample name is an
// instantaneous depth reading rather than a monotonic activity counter.
// Diffs of such gauges depend on background-poller timing, so the E1
// counter table excludes them to stay deterministic per seed.
func instantaneousGauge(name string) bool {
	for _, suffix := range []string{".outstanding", ".ready", ".occupancy", ".pending"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// runE3 reproduces the §3.2 copy claim with the KV store: POSIX copies
// on the kernel path vs zero-copy pushes on the bypass path.
func runE3(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()
	sizes := []int{64, 1024, 4096, 16384, 65536}

	tbl := metrics.NewTable("E3: KV GET cost vs value size — copy path vs zero-copy path",
		"value bytes", "catnap (copy) p50", "catnip (zero-copy) p50", "delta", "copy cost alone", "copy/app-compute")
	tbl.Note = "paper calibration: a 4KB copy is ~1µs, ~50% of a 2µs request"

	points := map[int]e3Point{}
	for _, size := range sizes {
		val := bytes.Repeat([]byte{0x5A}, size)

		var p e3Point
		for i, flavor := range []string{"catnap", "catnip"} {
			rig, err := newKVRig(flavor, seed)
			if err != nil {
				return nil, err
			}
			if _, err := rig.client.Set("key", val); err != nil {
				rig.close()
				return nil, fmt.Errorf("%s set: %w", flavor, err)
			}
			var h metrics.Histogram
			for j := 0; j < rttSamples; j++ {
				_, cost, found, err := rig.client.Get("key")
				if err != nil || !found {
					rig.close()
					return nil, fmt.Errorf("%s get: found=%v err=%v", flavor, found, err)
				}
				h.Record(cost)
			}
			rig.close()
			if i == 0 {
				p.copyP50 = h.Percentile(50)
			} else {
				p.zcP50 = h.Percentile(50)
			}
		}
		points[size] = p
		copyCost := model.CopyCost(size)
		tbl.AddRow(size, p.copyP50, p.zcP50, p.copyP50-p.zcP50, copyCost,
			fmt.Sprintf("%.0f%%", 100*float64(copyCost)/float64(model.AppRequestNS)))
	}
	res.Tables = append(res.Tables, tbl)

	copy4k := model.CopyCost(4096)
	res.check("4KB copy ≈ 1µs", copy4k >= 900 && copy4k <= 1100, "copy(4KB) = %v", copy4k)
	res.check("copy ≈ 50% of app compute at 4KB",
		float64(copy4k)/float64(model.AppRequestNS) > 0.4 &&
			float64(copy4k)/float64(model.AppRequestNS) < 0.6,
		"ratio %.2f", float64(copy4k)/float64(model.AppRequestNS))
	res.check("zero-copy wins at every size", allSizesWin(points),
		"copy-path p50 > zero-copy p50 for all sizes")
	res.check("gap grows with value size",
		points[65536].copyP50-points[65536].zcP50 > points[64].copyP50-points[64].zcP50,
		"delta 64B=%v, 64KB=%v", points[64].copyP50-points[64].zcP50,
		points[65536].copyP50-points[65536].zcP50)
	return res, nil
}

type e3Point struct{ copyP50, zcP50 simclock.Lat }

func allSizesWin(points map[int]e3Point) bool {
	for _, p := range points {
		if p.copyP50 <= p.zcP50 {
			return false
		}
	}
	return true
}

// runE6 reproduces the §6 observation about POSIX-preserving user-level
// stacks: a lean user stack with the POSIX-emulation tax is slower than
// the kernel; the Demikernel interface over the same lean stack is much
// faster than both.
func runE6(seed int64) (*Result, error) {
	res := &Result{}
	model := simclock.Datacenter2019()

	configs := []struct {
		label  string
		flavor string
		extra  simclock.Lat
	}{
		{"linux kernel (catnap)", "catnap", 0},
		{"mTCP-style user stack + POSIX emulation", "catnip", model.PosixEmulationNS},
		{"demikernel interface (catnip)", "catnip", 0},
	}
	tbl := metrics.NewTable("E6: 64B echo RTT across stack architectures",
		"stack", "p50", "p99", "vs kernel")
	p50s := make([]simclock.Lat, len(configs))
	for i, cfg := range configs {
		rig, err := newEchoRig(cfg.flavor, seed, cfg.extra)
		if err != nil {
			return nil, err
		}
		h, err := rig.measureEcho(64, rttSamples)
		rig.close()
		if err != nil {
			return nil, err
		}
		p50s[i] = h.Percentile(50)
		tbl.AddRow(cfg.label, h.Percentile(50), h.Percentile(99), metrics.Ratio(h.Percentile(50), p50s[0]))
	}
	res.Tables = append(res.Tables, tbl)

	res.check("POSIX-preserving user stack slower than the kernel (mTCP claim)",
		p50s[1] > p50s[0], "mTCP-style %v > kernel %v", p50s[1], p50s[0])
	res.check("demikernel interface beats both", p50s[2] < p50s[0] && p50s[2] < p50s[1],
		"demikernel %v, kernel %v, mTCP-style %v", p50s[2], p50s[0], p50s[1])
	return res, nil
}

// runE9 reproduces the portability story: the unmodified KV application
// over three libOSes.
func runE9(seed int64) (*Result, error) {
	res := &Result{}
	flavors := []string{"catnap", "catnip", "catmint"}
	tbl := metrics.NewTable("E9: unmodified KV application across libOSes",
		"libOS", "device class", "SET p50", "GET p50", "ops OK")
	getP50 := map[string]simclock.Lat{}

	for _, flavor := range flavors {
		rig, err := newKVRig(flavor, seed)
		if err != nil {
			return nil, err
		}
		var setH, getH metrics.Histogram
		ok := true
		val := bytes.Repeat([]byte{7}, 512)
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%02d", i)
			cost, err := rig.client.Set(key, append([]byte(nil), val...))
			if err != nil {
				ok = false
				break
			}
			setH.Record(cost)
		}
		for i := 0; i < 40 && ok; i++ {
			key := fmt.Sprintf("k%02d", i%20)
			got, cost, found, err := rig.client.Get(key)
			if err != nil || !found || !bytes.Equal(got, val) {
				ok = false
				break
			}
			getH.Record(cost)
		}
		deviceClass := map[string]string{
			"catnap":  "none (legacy kernel)",
			"catnip":  "DPDK-class NIC",
			"catmint": "RDMA-class NIC",
		}[flavor]
		rig.close()
		getP50[flavor] = getH.Percentile(50)
		tbl.AddRow(flavor, deviceClass, setH.Percentile(50), getH.Percentile(50), ok)
		res.check(fmt.Sprintf("%s runs the app unmodified", flavor), ok, "all ops verified")
	}
	res.Tables = append(res.Tables, tbl)
	res.check("both bypass libOSes beat the kernel libOS",
		getP50["catnip"] < getP50["catnap"] && getP50["catmint"] < getP50["catnap"],
		"catnip %v, catmint %v, catnap %v", getP50["catnip"], getP50["catmint"], getP50["catnap"])
	return res, nil
}

// runE11 reproduces the §5.2 framing requirement: multi-segment SGAs
// survive a lossy, reordering stream intact and in order.
func runE11(seed int64) (*Result, error) {
	res := &Result{}
	rig, err := newEchoRig("catnip", seed, 0)
	if err != nil {
		return nil, err
	}
	defer rig.close()

	// Inject loss and reordering mid-run.
	rig.cluster.Switch.SetImpairments(fabric.Impairments{LossRate: 0.05, ReorderRate: 0.1})

	const n = 60
	intact, ordered := 0, true
	for i := 0; i < n; i++ {
		s := sga.New(
			[]byte(fmt.Sprintf("hdr-%03d", i)),
			bytes.Repeat([]byte{byte(i)}, 100+i*13),
			[]byte("tail"),
		)
		qt, err := rig.cliNode.Push(mustQD(rig), s)
		if err != nil {
			return nil, err
		}
		if _, err := rig.cliNode.Wait(qt); err != nil {
			return nil, err
		}
		comp, err := rig.cliNode.BlockingPop(mustQD(rig))
		if err != nil {
			return nil, fmt.Errorf("pop %d: %w", i, err)
		}
		if comp.SGA.Equal(s) {
			intact++
		}
		if string(comp.SGA.Segments[0].Buf) != fmt.Sprintf("hdr-%03d", i) {
			ordered = false
		}
	}
	st := rig.cliNode.Catnip.Stack().Stats()
	tbl := metrics.NewTable("E11: SGA framing over TCP with 5% loss + 10% reordering",
		"messages", "intact", "in order", "retransmits", "fast retransmits", "out-of-order segs")
	tbl.AddRow(n, intact, ordered, st.Retransmits, st.FastRetransmits, st.OutOfOrderSegs)
	res.Tables = append(res.Tables, tbl)

	res.check("every SGA reconstructed exactly", intact == n, "%d/%d", intact, n)
	res.check("delivery order preserved", ordered, "FIFO across the stream held")
	res.check("loss was actually exercised", st.Retransmits+st.FastRetransmits > 0,
		"retransmissions observed: %d", st.Retransmits+st.FastRetransmits)
	return res, nil
}

// mustQD digs the echo client's queue descriptor out of the rig. The
// echo client owns the connection; for E11 the experiment pushes raw
// SGAs over it directly.
func mustQD(r *echoRig) demi.QD { return r.client.QD() }
