package demikernel

// End-to-end tests for the HTTP/1.1 server on catnip queues: keep-alive
// request handling, ranged reads, pipelining, Connection: close, idle
// reaping, half-close, and — the point of this PR — slow-client TCP
// backpressure. The slow-client tests exercise the full forcing chain
// (app pop rate → bounded endpoint ready list → shrinking advertised
// window → sender stall) and only recover because of the window-update
// ACK and zero-window persist-probe fixes in the user TCP stack; with
// either reverted, they hang at the stall and fail.

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"demikernel/internal/apps/failover"
	"demikernel/internal/apps/httpd"
	"demikernel/internal/telemetry"
	"demikernel/internal/workload"
)

const httpdPort = 8080

// httpdRig is one served httpd instance over a two-node catnip cluster:
// server on host 1 (pumped by Server.Run in a goroutine), client on
// host 2 (self-polled by its blocking calls).
type httpdRig struct {
	c       *Cluster
	srvNode *Node
	cliNode *Node
	srv     *httpd.Server
	objs    []workload.HTTPObject
	addr    Addr
	stop    chan struct{}
}

func newHTTPDRig(t *testing.T, seed int64, nobj, objSize int, cliCfg NodeConfig) *httpdRig {
	t.Helper()
	c := NewCluster(seed)
	srvNode := c.MustSpawn(Catnip, WithHost(1))
	if cliCfg.Host == 0 {
		cliCfg.Host = 2
	}
	cliNode := c.MustSpawn(Catnip, WithConfig(cliCfg))

	objs := workload.HTTPObjects(nobj, workload.FixedSize(objSize), seed)
	tree := httpd.NewTree()
	for _, o := range objs {
		tree.Add(o.Path, o.Body)
	}
	srv := httpd.NewServer(srvNode.LibOS, tree)
	if err := srv.Listen(httpdPort); err != nil {
		t.Fatal(err)
	}
	return &httpdRig{
		c: c, srvNode: srvNode, cliNode: cliNode, srv: srv, objs: objs,
		addr: c.AddrOf(srvNode, httpdPort),
	}
}

func (r *httpdRig) start() {
	r.stop = make(chan struct{})
	go r.srv.Run(r.stop)
}

func (r *httpdRig) shutdown() {
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
}

func (r *httpdRig) dial(t *testing.T) *httpd.Client {
	t.Helper()
	cl := httpd.NewClient(r.cliNode.LibOS)
	if err := cl.Connect(r.addr); err != nil {
		t.Fatal(err)
	}
	return cl
}

// waitCond polls both nodes until cond holds or the deadline passes.
func (r *httpdRig) waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		r.cliNode.Poll()
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPServeBasics covers the response matrix over one keep-alive
// connection: 200 with a body, HEAD without one, 404, satisfiable and
// unsatisfiable ranges, and Connection: close teardown.
func TestHTTPServeBasics(t *testing.T) {
	r := newHTTPDRig(t, 81, 4, 1024, NodeConfig{})
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	resp, err := cl.Get(r.objs[1].Path)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[1].Body) || resp.Close {
		t.Fatalf("GET: status=%d len=%d close=%v", resp.Status, len(resp.Body), resp.Close)
	}

	resp, err = cl.Head(r.objs[2].Path)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || len(resp.Body) != 0 {
		t.Fatalf("HEAD: status=%d len=%d, want 200 with no body", resp.Status, len(resp.Body))
	}

	resp, err = cl.Get("/no/such/object")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("missing object: status=%d, want 404", resp.Status)
	}

	resp, err = cl.GetRange(r.objs[0].Path, "bytes=100-199")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 206 || !bytes.Equal(resp.Body, r.objs[0].Body[100:200]) {
		t.Fatalf("range: status=%d len=%d", resp.Status, len(resp.Body))
	}

	resp, err = cl.GetRange(r.objs[0].Path, "bytes=-64")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 206 || !bytes.Equal(resp.Body, r.objs[0].Body[1024-64:]) {
		t.Fatalf("suffix range: status=%d len=%d", resp.Status, len(resp.Body))
	}

	resp, err = cl.GetRange(r.objs[0].Path, "bytes=4096-")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 416 || len(resp.Body) != 0 {
		t.Fatalf("unsatisfiable range: status=%d len=%d, want 416 empty", resp.Status, len(resp.Body))
	}

	if got := r.srv.Conns(); got != 1 {
		t.Fatalf("one keep-alive connection should be live, got %d", got)
	}

	// Connection: close answers the request, announces close, and tears
	// the connection down once the response flushes.
	resp, err = cl.GetClose(r.objs[3].Path)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !resp.Close || !bytes.Equal(resp.Body, r.objs[3].Body) {
		t.Fatalf("GET close: status=%d close=%v", resp.Status, resp.Close)
	}
	r.waitCond(t, "connection teardown", func() bool { return r.srv.Conns() == 0 })

	st := r.srv.Stats()
	if st.Requests != 7 || st.R200 != 3 || st.Heads != 1 || st.R206 != 2 || st.R404 != 1 || st.R416 != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ConnsAccepted != 1 || st.ConnsClosed != 1 {
		t.Fatalf("conn accounting: %+v", st)
	}
}

// TestHTTPPipelined sends many requests in ONE push; the server must
// parse them all out of however few pops they arrive as and answer each
// in order.
func TestHTTPPipelined(t *testing.T) {
	r := newHTTPDRig(t, 82, 8, 512, NodeConfig{})
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	idx := []int{3, 1, 3, 0, 7, 5, 1, 2, 6, 4}
	paths := make([]string, len(idx))
	for i, j := range idx {
		paths[i] = r.objs[j].Path
	}
	resps, err := cl.GetPipelined(paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(paths) {
		t.Fatalf("got %d responses, want %d", len(resps), len(paths))
	}
	for i, resp := range resps {
		if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[idx[i]].Body) {
			t.Fatalf("response %d: status=%d len=%d", i, resp.Status, len(resp.Body))
		}
	}
	if st := r.srv.Stats(); st.Requests != int64(len(paths)) {
		t.Fatalf("served %d requests, want %d", st.Requests, len(paths))
	}
}

// TestHTTPMalformed400 pushes an unparseable head; the server answers a
// close-marked 400 and drops the connection.
func TestHTTPMalformed400(t *testing.T) {
	r := newHTTPDRig(t, 83, 1, 256, NodeConfig{})
	r.start()
	defer r.shutdown()

	cqd, err := r.cliNode.Socket()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cliNode.Connect(cqd, r.addr); err != nil {
		t.Fatal(err)
	}
	cl := httpd.NewClient(r.cliNode.LibOS)
	cl.Adopt(cqd, r.addr)
	if _, err := r.cliNode.BlockingPush(cqd, NewSGA([]byte("PUT /x HTTP/1.1\r\n\r\n"))); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 400 || !resp.Close {
		t.Fatalf("malformed request: status=%d close=%v, want 400 close", resp.Status, resp.Close)
	}
	r.waitCond(t, "400 teardown", func() bool { return r.srv.Conns() == 0 })
	if st := r.srv.Stats(); st.R400 != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHTTPIdleReap injects a fake clock, lets a keep-alive connection go
// quiet past IdleTimeout, and requires the server to reap it.
func TestHTTPIdleReap(t *testing.T) {
	r := newHTTPDRig(t, 84, 1, 256, NodeConfig{})
	var fakeSec atomic.Int64
	fakeSec.Store(1_000)
	r.srv.IdleTimeout = time.Second
	r.srv.Now = func() time.Time { return time.Unix(fakeSec.Load(), 0) }
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	if resp, err := cl.Get(r.objs[0].Path); err != nil || resp.Status != 200 {
		t.Fatalf("warmup GET: %v status=%d", err, resp.Status)
	}
	if got := r.srv.Conns(); got != 1 {
		t.Fatalf("conns=%d, want 1", got)
	}
	fakeSec.Store(1_002) // two idle virtual seconds later
	r.waitCond(t, "idle reap", func() bool { return r.srv.Conns() == 0 })
	if st := r.srv.Stats(); st.IdleReaped != 1 {
		t.Fatalf("idle_reaped=%d, want 1", st.IdleReaped)
	}
	// The reaped connection is really gone: the next request fails.
	r.cliNode.WaitTimeout = 200 * time.Millisecond
	if _, err := cl.Get(r.objs[0].Path); err == nil {
		t.Fatal("GET on a reaped connection succeeded")
	}
}

// TestHTTPHalfCloseFlush: the client sends two large requests and sends
// FIN without reading. A small RxReadyCap keeps the responses from
// draining, so the server's second push cannot complete when its pop
// fails with the typed ErrClosed — the half-close case. The server must
// record it and keep flushing instead of dropping the owed response.
func TestHTTPHalfCloseFlush(t *testing.T) {
	r := newHTTPDRig(t, 85, 1, 200*1024, NodeConfig{Host: 2, RxReadyCap: 2})
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	if err := cl.SendRequest(r.objs[0].Path, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.SendRequest(r.objs[0].Path, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	r.waitCond(t, "half-close detection", func() bool { return r.srv.Stats().HalfCloses >= 1 })
	if st := r.srv.Stats(); st.Requests != 2 || st.R200 != 2 {
		t.Fatalf("both requests should have been served: %+v", st)
	}
}

// TestHTTPSlowClientStallAndRecover is the headline regression test: a
// client with a small bounded ready list issues far more requests than
// the stack can buffer and refuses to read. The stall must propagate
// app → endpoint → TCP window → server (rx_ready_stalls on the client,
// backlog pauses on the server), and — once the client starts reading —
// every response must still arrive intact. Recovery rides on the TCP
// window-update ACK and persist-probe fixes; without them this test
// deadlocks at the stall.
func TestHTTPSlowClientStallAndRecover(t *testing.T) {
	r := newHTTPDRig(t, 86, 4, 8192, NodeConfig{Host: 2, RxReadyCap: 4})
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	const n = 160
	for i := 0; i < n; i++ {
		if err := cl.SendRequest(r.objs[i%4].Path, false); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// Stall phase: no reads at all. Responses back up in the client's
	// TCP receive buffer, the advertised window closes, the server's
	// sends stall, and its response backlog hits the pause threshold.
	r.waitCond(t, "server backlog pause", func() bool {
		return r.srv.Stats().Backlogs >= 1
	})

	// Slow-read phase: the first pops pump the parked drain, which
	// immediately hits the bounded ready list — the rx_ready_stalls
	// counter must record the park.
	for i := 0; i < 8; i++ {
		resp, err := cl.ReadResponse()
		if err != nil {
			t.Fatalf("slow read %d: %v", i, err)
		}
		if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[i%4].Body) {
			t.Fatalf("slow response %d: status=%d len=%d", i, resp.Status, len(resp.Body))
		}
	}
	if r.cliNode.Catnip.RxStalls() < 1 {
		t.Fatal("bounded ready list never parked the drain (rx_ready_stalls = 0)")
	}

	// Recovery phase: read everything; each pop reopens ready-list space
	// and, through the resumed drain, the TCP window.
	for i := 8; i < n; i++ {
		resp, err := cl.ReadResponse()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[i%4].Body) {
			t.Fatalf("response %d: status=%d len=%d", i, resp.Status, len(resp.Body))
		}
	}
	if st := r.srv.Stats(); st.Requests != n || st.R200 != n {
		t.Fatalf("served %d/%d: %+v", st.R200, n, st)
	}
	if got := r.srv.Conns(); got != 1 {
		t.Fatalf("connection should have survived the stall, conns=%d", got)
	}
}

// TestHTTPRingServe runs the same server over the syscall-free SQ/CQ
// ring path: legacy clients keep working against it, and a ring client
// drives full batches through with GetBatch.
func TestHTTPRingServe(t *testing.T) {
	r := newHTTPDRig(t, 88, 8, 1024, NodeConfig{})
	r.srv.EnableRing(64)
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	resp, err := cl.Get(r.objs[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[0].Body) {
		t.Fatalf("ring-server GET: status=%d len=%d", resp.Status, len(resp.Body))
	}

	paths := make([]string, 8)
	for i := range paths {
		paths[i] = r.objs[i].Path
	}
	resps, err := cl.GetPipelined(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, rp := range resps {
		if rp.Status != 200 || !bytes.Equal(rp.Body, r.objs[i].Body) {
			t.Fatalf("pipelined %d over ring server: status=%d", i, rp.Status)
		}
	}

	cl.EnableRing(64)
	ok2xx, _, err := cl.GetBatch(paths, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok2xx != len(paths) {
		t.Fatalf("ring batch: %d/%d responses 2xx", ok2xx, len(paths))
	}
	if st := r.srv.Stats(); st.Requests != int64(1+8+8) {
		t.Fatalf("requests=%d, want 17", st.Requests)
	}
}

// TestHTTPRingSlowClient runs the slow-reader scenario against the
// ring-mode server: pops stay armed per connection, the backlog pause
// must close the window instead of buffering, and the batch API drains
// the stall.
func TestHTTPRingSlowClient(t *testing.T) {
	r := newHTTPDRig(t, 89, 2, 8192, NodeConfig{Host: 2, RxReadyCap: 4})
	r.srv.EnableRing(64)
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	const n = 160
	for i := 0; i < n; i++ {
		if err := cl.SendRequest(r.objs[i%2].Path, false); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	r.waitCond(t, "ring server backlog pause", func() bool {
		return r.srv.Stats().Backlogs >= 1
	})
	for i := 0; i < n; i++ {
		resp, err := cl.ReadResponse()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[i%2].Body) {
			t.Fatalf("response %d: status=%d len=%d", i, resp.Status, len(resp.Body))
		}
	}
	if r.cliNode.Catnip.RxStalls() < 1 {
		t.Fatal("bounded ready list never parked the drain (rx_ready_stalls = 0)")
	}
	if st := r.srv.Stats(); st.Requests != n {
		t.Fatalf("served %d, want %d", st.Requests, n)
	}
}

// TestHTTPCrashRestartKeepAlive kills the server mid keep-alive session
// (pipelined requests before and after), requires the client's armed
// failover policy to redial and replay onto the restarted incarnation,
// and closes with the frame-conservation laws across the boundary.
func TestHTTPCrashRestartKeepAlive(t *testing.T) {
	r := newHTTPDRig(t, 87, 4, 2048, NodeConfig{Host: 2, RTO: 2 * time.Millisecond, MaxRetransmits: 4})
	r.cliNode.WaitTimeout = 200 * time.Millisecond
	r.start()
	defer r.shutdown()
	cl := r.dial(t)
	cl.EnableFailover(failover.DefaultPolicy())

	paths := make([]string, 4)
	for i := range paths {
		paths[i] = r.objs[i].Path
	}
	resps, err := cl.GetPipelined(paths)
	if err != nil || len(resps) != 4 {
		t.Fatalf("pre-crash pipeline: %d responses, err=%v", len(resps), err)
	}
	for i, rp := range resps {
		if rp.Status != 200 || !bytes.Equal(rp.Body, r.objs[i].Body) {
			t.Fatalf("pre-crash response %d: status=%d", i, rp.Status)
		}
	}

	if _, err := r.srvNode.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := r.srvNode.Restart(); err != nil {
		t.Fatal(err)
	}

	// The same Server keeps pumping the same LibOS; its pre-crash
	// listener must accept the failover client's redial.
	resp, err := cl.Get(r.objs[2].Path)
	if err != nil {
		t.Fatalf("post-restart GET: %v", err)
	}
	if resp.Status != 200 || !bytes.Equal(resp.Body, r.objs[2].Body) {
		t.Fatalf("post-restart GET: status=%d", resp.Status)
	}
	reconnects, replays := cl.FailoverStats()
	if reconnects < 1 || replays < 1 {
		t.Fatalf("failover did not engage: reconnects=%d replays=%d", reconnects, replays)
	}
	resps, err = cl.GetPipelined(paths)
	if err != nil || len(resps) != 4 {
		t.Fatalf("post-restart pipeline: %d responses, err=%v", len(resps), err)
	}
	for i, rp := range resps {
		if rp.Status != 200 || !bytes.Equal(rp.Body, r.objs[i].Body) {
			t.Fatalf("post-restart response %d: status=%d", i, rp.Status)
		}
	}

	// Quiesce, then assert the conservation laws across the incarnation
	// boundary: the fabric, the NIC, and the stack each account for
	// every frame.
	r.shutdown()
	qdeadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(qdeadline) {
		r.c.Poll()
		r.c.Switch.Flush()
		time.Sleep(time.Millisecond)
	}
	sw := r.c.Switch
	fs := sw.Stats()
	var sumTx int64
	for id := 0; id < sw.NumPorts(); id++ {
		sumTx += sw.PortStats(id).TxFrames
	}
	if lhs, rhs := sumTx+fs.InjectedDup, fs.Delivered+fs.InjectedLoss+fs.LinkDownDrops+fs.DroppedRxFull+fs.AsymDrops; lhs != rhs {
		t.Fatalf("fabric conservation violated: tx+dup=%d != delivered+drops=%d", lhs, rhs)
	}
	dev := r.srvNode.Catnip.Device()
	ds := dev.Stats()
	ps := sw.PortStats(dev.PortID())
	if ps.Delivered != ds.RxFrames+ds.RxDropped+ds.FilterDrops {
		t.Fatalf("nic conservation violated: delivered=%d != rx=%d+dropped=%d+filtered=%d",
			ps.Delivered, ds.RxFrames, ds.RxDropped, ds.FilterDrops)
	}
	r.srvNode.Poll()
	ds = dev.Stats()
	var occ int64
	for q := 0; q < dev.NumRxQueues(); q++ {
		occ += int64(dev.RxOccupancy(q))
	}
	framesIn := r.srvNode.Catnip.StackStats().FramesIn
	if ds.RxFrames != framesIn+occ+ds.RxFlushed {
		t.Fatalf("stack conservation violated across crash: nic rx=%d != frames_in=%d + rings=%d + flushed=%d",
			ds.RxFrames, framesIn, occ, ds.RxFlushed)
	}
}

// TestHTTPTelemetry checks the httpd.* counter family and the per-route
// latency table plumb through the registry.
func TestHTTPTelemetry(t *testing.T) {
	r := newHTTPDRig(t, 90, 2, 512, NodeConfig{})
	reg := telemetry.NewRegistry()
	r.srv.RegisterTelemetry(reg, "httpd")
	r.srv.EnableLatency()
	r.start()
	defer r.shutdown()
	cl := r.dial(t)

	const n = 16
	for i := 0; i < n; i++ {
		if resp, err := cl.Get(r.objs[i%2].Path); err != nil || resp.Status != 200 {
			t.Fatalf("GET %d: %v status=%d", i, err, resp.Status)
		}
	}
	snap := reg.Snapshot()
	if v, ok := snap.Get("httpd.requests"); !ok || v != n {
		t.Fatalf("httpd.requests=%d ok=%v, want %d", v, ok, n)
	}
	if v, _ := snap.Get("httpd.resp_200"); v != n {
		t.Fatalf("httpd.resp_200=%d, want %d", v, n)
	}
	if v, _ := snap.Get("httpd.bytes_out"); v <= int64(n*512) {
		t.Fatalf("httpd.bytes_out=%d, want > %d (bodies + headers)", v, n*512)
	}
	h := r.srv.RouteHistogram("obj")
	if h == nil || h.Count() != n {
		t.Fatalf("route histogram missing or short: %+v", h)
	}
	if h.Percentile(99) <= 0 {
		t.Fatalf("p99 latency = %v, want > 0", h.Percentile(99))
	}
	if tbl := r.srv.LatencyTable(); tbl == nil {
		t.Fatal("latency table is nil")
	}
}
