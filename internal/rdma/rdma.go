// Package rdma simulates an RDMA-capable kernel-bypass NIC (Table 1,
// middle column of the paper): protection domains, registered memory
// regions with local/remote keys, reliable-connected queue pairs, two-sided
// SEND/RECV with receiver-posted buffers, one-sided READ/WRITE, completion
// queues, and a connection manager in the style of rdmacm.
//
// The simulation keeps the two properties the paper leans on:
//
//   - Memory must be registered before any verb can touch it, and
//     registration is expensive (charged per region from the cost model).
//     The Demikernel libOS hides this behind package membuf (§4.5).
//
//   - "Receivers must allocate enough buffers of the right size for
//     senders. Allocating too many buffers wastes memory while allocating
//     too few causes communication to fail." A SEND arriving at a queue
//     pair with no posted receive fails with an RNR (receiver-not-ready)
//     completion; a too-small posted buffer fails with a length error.
//
// Like RoCE, the simulated transport assumes a lossless fabric: a lost or
// reordered frame moves the queue pair to an error state instead of being
// recovered. Run it over an unimpaired fabric switch.
package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
	"demikernel/internal/telemetry"
)

// Errors returned by verb calls.
var (
	ErrNotRegistered = errors.New("rdma: buffer outside registered region")
	ErrQPState       = errors.New("rdma: queue pair not ready")
	ErrPortInUse     = errors.New("rdma: listen port in use")
	ErrBadBounds     = errors.New("rdma: sge out of MR bounds")
)

// WCStatus is the status of a work completion.
type WCStatus int

const (
	// StatusSuccess indicates the operation completed.
	StatusSuccess WCStatus = iota
	// StatusRNR indicates the remote had no posted receive buffer.
	StatusRNR
	// StatusLenErr indicates the posted receive buffer was too small.
	StatusLenErr
	// StatusRemoteAccess indicates an invalid rkey or out-of-bounds
	// remote access.
	StatusRemoteAccess
	// StatusQPError indicates the queue pair entered an error state
	// (sequence break: the lossless-fabric assumption was violated).
	StatusQPError
)

func (s WCStatus) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusRNR:
		return "receiver-not-ready"
	case StatusLenErr:
		return "recv-length-error"
	case StatusRemoteAccess:
		return "remote-access-error"
	case StatusQPError:
		return "qp-error"
	default:
		return "unknown"
	}
}

// Opcode identifies the verb behind a completion.
type Opcode int

// Verb opcodes.
const (
	OpSend Opcode = iota
	OpRecv
	OpWrite
	OpRead
)

// WC is a work completion.
type WC struct {
	WRID   uint64
	QPNum  uint32
	Op     Opcode
	Status WCStatus
	Len    int
	Cost   simclock.Lat
}

// CQ is a polled completion queue.
type CQ struct {
	dev     *Device
	entries []WC
}

// Poll removes and returns up to max completions.
func (cq *CQ) Poll(max int) []WC {
	d := cq.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(cq.entries)
	if max > 0 && n > max {
		n = max
	}
	out := make([]WC, n)
	copy(out, cq.entries)
	cq.entries = cq.entries[:copy(cq.entries, cq.entries[n:])]
	return out
}

func (cq *CQ) pushLocked(wc WC) {
	cq.entries = append(cq.entries, wc)
}

// PD is a protection domain grouping memory registrations and queue pairs.
type PD struct {
	dev *Device
	id  uint32
}

// MR is a registered memory region.
type MR struct {
	pd    *PD
	buf   []byte
	lkey  uint32
	rkey  uint32
	valid bool
}

// LKey returns the region's local key.
func (mr *MR) LKey() uint32 { return mr.lkey }

// RKey returns the region's remote key, handed to peers for one-sided ops.
func (mr *MR) RKey() uint32 { return mr.rkey }

// Len returns the registered length.
func (mr *MR) Len() int { return len(mr.buf) }

// Bytes exposes the registered memory (the application's own buffer).
func (mr *MR) Bytes() []byte { return mr.buf }

// Deregister invalidates the region.
func (mr *MR) Deregister() {
	d := mr.pd.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	mr.valid = false
	delete(d.mrs, mr.rkey)
	d.stats.Deregistrations++
	d.stats.PinnedBytes -= int64(len(mr.buf))
}

// Sge is a scatter-gather entry referencing registered memory, the unit
// verbs operate on.
type Sge struct {
	MR  *MR
	Off int
	Len int
}

func (s Sge) check() error {
	if s.MR == nil || !s.MR.valid {
		return ErrNotRegistered
	}
	if s.Off < 0 || s.Len < 0 || s.Off+s.Len > len(s.MR.buf) {
		return fmt.Errorf("%w: off=%d len=%d mr=%d", ErrBadBounds, s.Off, s.Len, len(s.MR.buf))
	}
	return nil
}

// Stats counts device events.
type Stats struct {
	Registrations   int64
	Deregistrations int64
	PinnedBytes     int64
	Sends           int64
	Recvs           int64
	Writes          int64
	Reads           int64
	RNRNaks         int64
	LenNaks         int64
	AccessNaks      int64
	QPErrors        int64
	// IcrcDrops counts inbound frames discarded because the invariant
	// CRC trailer did not match: corruption on the wire. The dropped
	// frame leaves a PSN gap, so the next frame moves the QP to the
	// error state — corruption is never silent.
	IcrcDrops int64
}

// qpState is the queue-pair lifecycle.
type qpState int

const (
	qpConnecting qpState = iota
	qpReady
	qpError
)

type recvWR struct {
	wrID uint64
	sge  Sge
}

type pendingSend struct {
	wrID uint64
	op   Opcode
	sge  Sge // local target for READ
	n    int
}

// QP is a reliable-connected queue pair.
type QP struct {
	dev       *Device
	num       uint32
	pd        *PD
	sendCQ    *CQ
	recvCQ    *CQ
	state     qpState
	remoteMAC fabric.MAC
	remoteQPN uint32

	sendPSN  uint32
	recvPSN  uint32
	recvQ    []recvWR
	inflight map[uint32]pendingSend // psn -> send awaiting ack
}

// Num returns the queue-pair number.
func (qp *QP) Num() uint32 { return qp.num }

// Connected reports whether the connection handshake has completed.
func (qp *QP) Connected() bool {
	qp.dev.mu.Lock()
	defer qp.dev.mu.Unlock()
	return qp.state == qpReady
}

// Errored reports whether the queue pair has entered the error state
// (sequence break, corrupted frame gap, or peer-side teardown). An
// errored QP never recovers; libOSes tear it down and dial a new one.
func (qp *QP) Errored() bool {
	qp.dev.mu.Lock()
	defer qp.dev.mu.Unlock()
	return qp.state == qpError
}

// Destroy tears the queue pair down: every outstanding work request is
// flushed to its completion queue with StatusQPError and the QP number
// is released. LibOS reconnect paths call it before dialing a
// replacement QP.
func (qp *QP) Destroy() {
	d := qp.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if qp.state != qpError {
		qp.state = qpError
		qp.flushLocked()
	}
	delete(d.qps, qp.num)
}

// flushLocked completes every outstanding work request with
// StatusQPError, mirroring how a real RC QP in the error state flushes
// its send and receive queues. Posted receives complete too, so a libOS
// waiting on pops learns about the failure instead of hanging.
func (qp *QP) flushLocked() {
	for psn, pend := range qp.inflight {
		delete(qp.inflight, psn)
		qp.sendCQ.pushLocked(WC{WRID: pend.wrID, QPNum: qp.num, Op: pend.op, Status: StatusQPError, Len: pend.n})
	}
	for _, wr := range qp.recvQ {
		qp.recvCQ.pushLocked(WC{WRID: wr.wrID, QPNum: qp.num, Op: OpRecv, Status: StatusQPError})
	}
	qp.recvQ = nil
}

// errorQPLocked moves qp to the error state and flushes its work queues.
func (d *Device) errorQPLocked(qp *QP) {
	if qp.state == qpError {
		return
	}
	qp.state = qpError
	d.stats.QPErrors++
	qp.flushLocked()
}

// PostedRecvs returns the number of currently posted receive buffers.
func (qp *QP) PostedRecvs() int {
	qp.dev.mu.Lock()
	defer qp.dev.mu.Unlock()
	return len(qp.recvQ)
}

// Listener accepts queue-pair connections on a service port.
type Listener struct {
	dev     *Device
	port    uint16
	pd      *PD
	sendCQ  *CQ
	recvCQ  *CQ
	backlog []*QP
}

// Accept pops one connected queue pair, without blocking.
func (l *Listener) Accept() (*QP, bool) {
	d := l.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(l.backlog) == 0 {
		return nil, false
	}
	qp := l.backlog[0]
	l.backlog = l.backlog[1:]
	return qp, true
}

// Device is a simulated RDMA NIC attached to the fabric.
type Device struct {
	model *simclock.CostModel
	mac   fabric.MAC
	port  *fabric.Port

	mu        sync.Mutex
	nextPD    uint32
	nextKey   uint32
	nextQPN   uint32
	mrs       map[uint32]*MR // rkey -> MR
	qps       map[uint32]*QP
	listeners map[uint16]*Listener
	stats     Stats
}

// New attaches a new RDMA device to sw with the given MAC.
func New(model *simclock.CostModel, sw *fabric.Switch, mac fabric.MAC) *Device {
	return &Device{
		model:     model,
		mac:       mac,
		port:      sw.NewPort(8192),
		mrs:       make(map[uint32]*MR),
		qps:       make(map[uint32]*QP),
		listeners: make(map[uint16]*Listener),
	}
}

// MAC returns the device address.
func (d *Device) MAC() fabric.MAC { return d.mac }

// PortID returns the fabric port this device is attached to, the handle
// chaos schedules use to target the device's link.
func (d *Device) PortID() int { return d.port.ID() }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// RegisterTelemetry lifts the device counters into a telemetry registry
// under prefix (e.g. "rnic"). Sample funcs snapshot Stats() at read time.
func (d *Device) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	stat := func(read func(Stats) int64) func() int64 {
		return func() int64 { return read(d.Stats()) }
	}
	r.RegisterFunc(prefix+".registrations", stat(func(s Stats) int64 { return s.Registrations }))
	r.RegisterFunc(prefix+".deregistrations", stat(func(s Stats) int64 { return s.Deregistrations }))
	r.RegisterFunc(prefix+".pinned_bytes", stat(func(s Stats) int64 { return s.PinnedBytes }))
	r.RegisterFunc(prefix+".sends", stat(func(s Stats) int64 { return s.Sends }))
	r.RegisterFunc(prefix+".recvs", stat(func(s Stats) int64 { return s.Recvs }))
	r.RegisterFunc(prefix+".writes", stat(func(s Stats) int64 { return s.Writes }))
	r.RegisterFunc(prefix+".reads", stat(func(s Stats) int64 { return s.Reads }))
	r.RegisterFunc(prefix+".rnr_naks", stat(func(s Stats) int64 { return s.RNRNaks }))
	r.RegisterFunc(prefix+".len_naks", stat(func(s Stats) int64 { return s.LenNaks }))
	r.RegisterFunc(prefix+".access_naks", stat(func(s Stats) int64 { return s.AccessNaks }))
	r.RegisterFunc(prefix+".qp_errors", stat(func(s Stats) int64 { return s.QPErrors }))
	r.RegisterFunc(prefix+".icrc_drops", stat(func(s Stats) int64 { return s.IcrcDrops }))
}

// AllocPD allocates a protection domain.
func (d *Device) AllocPD() *PD {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextPD++
	return &PD{dev: d, id: d.nextPD}
}

// CreateCQ creates a completion queue.
func (d *Device) CreateCQ() *CQ { return &CQ{dev: d} }

// RegisterMemory registers buf for DMA within the protection domain.
// It charges the full control-path registration cost — the cost the
// Demikernel memory manager amortises over whole regions.
func (pd *PD) RegisterMemory(buf []byte) *MR {
	d := pd.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextKey++
	mr := &MR{pd: pd, buf: buf, lkey: d.nextKey, rkey: d.nextKey | 0x8000_0000, valid: true}
	d.mrs[mr.rkey] = mr
	d.stats.Registrations++
	d.stats.PinnedBytes += int64(len(buf))
	return mr
}

// RegisterRegion implements membuf.RegistrationSink so a Demikernel
// memory manager can register its slab regions transparently.
func (d *Device) RegisterRegion(id uint64, mem []byte) {
	pd := d.AllocPD()
	pd.RegisterMemory(mem)
}

// RegistrationCost returns the charged cost of one registration.
func (d *Device) RegistrationCost() simclock.Lat { return d.model.RegistrationNS }

// Listen binds a service port; accepted queue pairs use the given PD and
// completion queues.
func (d *Device) Listen(port uint16, pd *PD, sendCQ, recvCQ *CQ) (*Listener, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, used := d.listeners[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{dev: d, port: port, pd: pd, sendCQ: sendCQ, recvCQ: recvCQ}
	d.listeners[port] = l
	return l, nil
}

// Connect starts a reliable-connected handshake with the listener at
// remoteMAC:port. Poll the device until the returned QP is Connected.
func (d *Device) Connect(remoteMAC fabric.MAC, port uint16, pd *PD, sendCQ, recvCQ *CQ) *QP {
	d.mu.Lock()
	qp := d.newQPLocked(pd, sendCQ, recvCQ)
	qp.remoteMAC = remoteMAC
	d.mu.Unlock()

	var payload []byte
	payload = binary.BigEndian.AppendUint16(payload, port)
	payload = binary.BigEndian.AppendUint32(payload, qp.num)
	d.send(remoteMAC, opConnReq, 0, payload, 0)
	return qp
}

func (d *Device) newQPLocked(pd *PD, sendCQ, recvCQ *CQ) *QP {
	d.nextQPN++
	qp := &QP{
		dev:      d,
		num:      d.nextQPN,
		pd:       pd,
		sendCQ:   sendCQ,
		recvCQ:   recvCQ,
		state:    qpConnecting,
		inflight: make(map[uint32]pendingSend),
	}
	d.qps[qp.num] = qp
	return qp
}

// PostRecv posts one receive buffer. Each SEND consumes exactly one.
func (qp *QP) PostRecv(wrID uint64, sge Sge) error {
	if err := sge.check(); err != nil {
		return err
	}
	d := qp.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	qp.recvQ = append(qp.recvQ, recvWR{wrID: wrID, sge: sge})
	return nil
}

// PostSend posts a two-sided SEND of the bytes in sge.
func (qp *QP) PostSend(wrID uint64, sge Sge) error {
	if err := sge.check(); err != nil {
		return err
	}
	d := qp.dev
	d.mu.Lock()
	if qp.state != qpReady {
		d.mu.Unlock()
		return ErrQPState
	}
	psn := qp.sendPSN
	qp.sendPSN++
	qp.inflight[psn] = pendingSend{wrID: wrID, op: OpSend, n: sge.Len}
	d.stats.Sends++
	remoteMAC, remoteQPN := qp.remoteMAC, qp.remoteQPN
	d.mu.Unlock()

	cost := d.model.RDMAOpNS + d.model.DMACost(sge.Len)
	payload := binary.BigEndian.AppendUint32(nil, psn)
	payload = append(payload, sge.MR.buf[sge.Off:sge.Off+sge.Len]...)
	d.send(remoteMAC, opSend, remoteQPN, payload, cost)
	return nil
}

// PostWrite posts a one-sided RDMA WRITE into (rkey, roff) on the peer.
// The peer application is never involved ("silent" on the remote side).
func (qp *QP) PostWrite(wrID uint64, local Sge, rkey uint32, roff int) error {
	if err := local.check(); err != nil {
		return err
	}
	d := qp.dev
	d.mu.Lock()
	if qp.state != qpReady {
		d.mu.Unlock()
		return ErrQPState
	}
	psn := qp.sendPSN
	qp.sendPSN++
	qp.inflight[psn] = pendingSend{wrID: wrID, op: OpWrite, n: local.Len}
	d.stats.Writes++
	remoteMAC, remoteQPN := qp.remoteMAC, qp.remoteQPN
	d.mu.Unlock()

	cost := d.model.RDMAOpNS + d.model.DMACost(local.Len)
	payload := binary.BigEndian.AppendUint32(nil, psn)
	payload = binary.BigEndian.AppendUint32(payload, rkey)
	payload = binary.BigEndian.AppendUint64(payload, uint64(roff))
	payload = append(payload, local.MR.buf[local.Off:local.Off+local.Len]...)
	d.send(remoteMAC, opWrite, remoteQPN, payload, cost)
	return nil
}

// PostRead posts a one-sided RDMA READ of rlen bytes from (rkey, roff) on
// the peer into local.
func (qp *QP) PostRead(wrID uint64, local Sge, rkey uint32, roff, rlen int) error {
	if err := local.check(); err != nil {
		return err
	}
	if rlen > local.Len {
		return fmt.Errorf("%w: read %d into %d", ErrBadBounds, rlen, local.Len)
	}
	d := qp.dev
	d.mu.Lock()
	if qp.state != qpReady {
		d.mu.Unlock()
		return ErrQPState
	}
	psn := qp.sendPSN
	qp.sendPSN++
	qp.inflight[psn] = pendingSend{wrID: wrID, op: OpRead, sge: local, n: rlen}
	d.stats.Reads++
	remoteMAC, remoteQPN := qp.remoteMAC, qp.remoteQPN
	d.mu.Unlock()

	payload := binary.BigEndian.AppendUint32(nil, psn)
	payload = binary.BigEndian.AppendUint32(payload, rkey)
	payload = binary.BigEndian.AppendUint64(payload, uint64(roff))
	payload = binary.BigEndian.AppendUint32(payload, uint32(rlen))
	d.send(remoteMAC, opReadReq, remoteQPN, payload, d.model.RDMAOpNS)
	return nil
}
