// Package catfish is the storage library OS: it implements Demikernel
// file queues over the simulated SPDK NVMe device, using the
// accelerator-specific log-structured layout of §5.3 (package spdk's
// blob store) instead of a general-purpose UNIX file system.
//
// A file queue is an append-only record stream: push durably appends one
// scatter-gather array; pop returns the next unread one. Records keep
// their segmentation via the standard SGA framing, so "a scatter-gather
// array pushed into a Demikernel queue always pops out as a single
// element" holds across the storage path and across restarts.
package catfish

import (
	"errors"
	"sync"
	"time"

	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
	"demikernel/internal/telemetry"
)

// Retry policy for transient device failures. Injected media errors
// (spdk.ErrIO) and controller resets (spdk.ErrDeviceReset) are absorbed
// by the libOS — the application's qtoken only fails once the retry
// budget is spent.
const (
	// DefaultMaxRetries bounds retry attempts per operation.
	DefaultMaxRetries = 8
	// DefaultRetryBackoff is the first retry delay; it doubles per
	// attempt.
	DefaultRetryBackoff = 100 * time.Microsecond
)

// Transport is the catfish libOS transport.
type Transport struct {
	model *simclock.CostModel
	dev   *spdk.Device
	store *spdk.Store
	pool  BufPool // size-classed SGA buffer pool (pool.go)

	mu           sync.Mutex
	fqs          []*fileQueue
	lqs          []*LookupQueue
	maxRetries   int
	retryBackoff time.Duration
	retries      int64 // transient failures absorbed by the retry loop
}

// New opens (recovering if necessary) a catfish instance on dev. The
// recovery scan itself runs under the transient-failure retry loop: a
// controller reset mid-scan is a retried open, never a silently
// truncated log.
func New(model *simclock.CostModel, dev *spdk.Device) (*Transport, error) {
	t := &Transport{
		model:        model,
		dev:          dev,
		maxRetries:   DefaultMaxRetries,
		retryBackoff: DefaultRetryBackoff,
	}
	_, err := t.retry(func() (simclock.Lat, error) {
		var c simclock.Lat
		var e error
		t.store, c, e = spdk.NewStore(dev)
		return c, e
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// SetRetryPolicy overrides the transient-failure retry budget (chaos
// tests tighten it to observe give-up behaviour).
func (t *Transport) SetRetryPolicy(maxRetries int, backoff time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxRetries = maxRetries
	t.retryBackoff = backoff
}

// Retries reports how many transient device failures the retry loop has
// absorbed.
func (t *Transport) Retries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retries
}

// transient reports whether err is worth retrying: controller resets
// clear after the controller re-initialises, injected media errors are
// probabilistic.
func transient(err error) bool {
	return errors.Is(err, spdk.ErrDeviceReset) || errors.Is(err, spdk.ErrIO)
}

// retry runs op, retrying with exponential backoff while it fails
// transiently. The blob layer's appends are idempotent on failure (the
// tail only advances after a fully successful append), so re-running op
// is safe. The accumulated virtual cost of every attempt is returned —
// failed device commands still spent device time.
func (t *Transport) retry(op func() (simclock.Lat, error)) (simclock.Lat, error) {
	t.mu.Lock()
	maxRetries, backoff := t.maxRetries, t.retryBackoff
	t.mu.Unlock()
	var total simclock.Lat
	for attempt := 0; ; attempt++ {
		cost, err := op()
		total += cost
		if err == nil || !transient(err) || attempt >= maxRetries {
			return total, err
		}
		t.mu.Lock()
		t.retries++
		t.mu.Unlock()
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Name implements core.Transport.
func (t *Transport) Name() string { return "catfish" }

// Features implements core.Transport.
func (t *Transport) Features() core.Features {
	return core.Features{
		KernelBypass: true,
		SoftwareSupplied: []string{
			"log-structured record layout", "naming", "sga framing",
		},
	}
}

// Device exposes the NVMe device (for stats).
func (t *Transport) Device() *spdk.Device { return t.dev }

// RegisterTelemetry lifts the transport's counters — the retry-loop
// absorption count, the SGA buffer pool's, and the NVMe device's
// (including its pushdown engine) — into a telemetry registry under
// prefix.
func (t *Transport) RegisterTelemetry(r *telemetry.Registry, prefix string) {
	t.dev.RegisterTelemetry(r, prefix+".nvme")
	t.pool.RegisterTelemetry(r, prefix+".pool")
	r.RegisterFunc(prefix+".retries", t.Retries)
}

// Store exposes the blob store (for recovery tests).
func (t *Transport) Store() *spdk.Store { return t.store }

// Pool exposes the SGA buffer pool (for leak asserts).
func (t *Transport) Pool() *BufPool { return &t.pool }

// AllocSGA implements core.Transport: buffers come from the size-classed
// pool and return to it through the SGA's free hook. The libOS frees a
// pushed SGA once its record is durably appended (the marshalled copy is
// on media); applications free popped SGAs when done with them.
func (t *Transport) AllocSGA(n int) sga.SGA { return t.pool.Get(n).SGA() }

// Socket implements core.Transport; catfish has no network path.
func (t *Transport) Socket() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// SocketUDP implements core.Transport; this libOS has no datagram path.
func (t *Transport) SocketUDP() (core.Endpoint, error) {
	return nil, core.ErrNotSupported
}

// Open implements core.Transport: it returns a file queue over the named
// record stream. Reads resume from the first record (a fresh cursor per
// open).
func (t *Transport) Open(path string) (queue.IoQueue, error) {
	var f *spdk.File
	_, err := t.retry(func() (simclock.Lat, error) {
		var c simclock.Lat
		var e error
		f, c, e = t.store.Open(path)
		return c, e
	})
	if err != nil {
		return nil, err
	}
	fq := &fileQueue{t: t, f: f}
	t.mu.Lock()
	t.fqs = append(t.fqs, fq)
	t.mu.Unlock()
	return fq, nil
}

// Poll implements core.Transport: pump the device (driving Execute
// waiters and in-flight pushdown traversals one hop per tick) and serve
// every queue's waiters.
func (t *Transport) Poll() int {
	n := t.dev.Pump()
	// Snapshot the slice headers only: queues are append-only, so the
	// captured prefix stays valid (and the poll tick allocation-free)
	// even if a concurrent Open grows the slice.
	t.mu.Lock()
	fqs := t.fqs
	lqs := t.lqs
	t.mu.Unlock()
	for _, fq := range fqs {
		n += fq.Pump()
	}
	for _, lq := range lqs {
		n += lq.Pump()
	}
	return n
}

// fileQueue adapts one blob file to the IoQueue interface.
type fileQueue struct {
	t *Transport
	f *spdk.File

	mu      sync.Mutex
	cursor  int
	waiters []queue.DoneFunc
	closed  bool
}

// Push implements queue.IoQueue: a durable append of the framed SGA.
func (q *fileQueue) Push(s sga.SGA, cost simclock.Lat, done queue.DoneFunc) {
	q.mu.Lock()
	closed := q.closed
	q.mu.Unlock()
	if closed {
		done(queue.Completion{Kind: queue.OpPush, Err: queue.ErrClosed})
		return
	}
	// Transient device failures (resets, injected errors) are retried
	// with backoff; the qtoken only fails once the budget is spent.
	data := s.Marshal()
	c, err := q.t.retry(func() (simclock.Lat, error) { return q.f.Append(data) })
	if err != nil {
		done(queue.Completion{Kind: queue.OpPush, Err: err})
		return
	}
	// The record is durable: the staging SGA is consumed, so pooled
	// buffers (AllocSGA) recycle here. A failed push leaves ownership
	// with the application, which may retry with the same SGA.
	s.Free()
	done(queue.Completion{Kind: queue.OpPush, Cost: cost + c})
	q.Pump() // a waiter may be satisfiable now
}

// Pop implements queue.IoQueue: the next unread record, or a wait until
// one is appended.
func (q *fileQueue) Pop(done queue.DoneFunc) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		done(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
		return
	}
	q.waiters = append(q.waiters, done)
	q.mu.Unlock()
	q.Pump()
}

// Pump implements queue.IoQueue: serve waiters from available records.
func (q *fileQueue) Pump() int {
	n := 0
	for {
		q.mu.Lock()
		if q.closed || len(q.waiters) == 0 || q.cursor >= q.f.NumRecords() {
			q.mu.Unlock()
			return n
		}
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		idx := q.cursor
		q.cursor++
		q.mu.Unlock()

		var rec []byte
		cost, err := q.t.retry(func() (simclock.Lat, error) {
			var c simclock.Lat
			var e error
			rec, c, e = q.f.Read(idx)
			return c, e
		})
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		s, _, err := sga.Unmarshal(rec)
		if err != nil {
			w(queue.Completion{Kind: queue.OpPop, Err: err})
			continue
		}
		w(queue.Completion{Kind: queue.OpPop, SGA: s, Cost: cost})
		n++
	}
}

// Close implements queue.IoQueue.
func (q *fileQueue) Close() error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, w := range ws {
		w(queue.Completion{Kind: queue.OpPop, Err: queue.ErrClosed})
	}
	return nil
}
