// Package workload generates the synthetic request streams the
// experiments and tools drive applications with. The paper motivates the
// Demikernel with datacenter applications (Redis, memcached) whose
// production traces are skewed: a small set of hot keys dominates, most
// values are small with a heavy tail, and reads outnumber writes. Since
// real traces are unavailable, this package provides deterministic
// generators with those shape properties (uniform and Zipf key
// popularity, fixed and bimodal value sizes, configurable read ratio).
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one generated operation.
type Op struct {
	// IsRead selects GET (true) or SET (false).
	IsRead bool
	// Key is the operation's key.
	Key string
	// ValueLen is the value size for writes (0 for reads).
	ValueLen int
}

// KeyDist selects keys.
type KeyDist interface {
	// NextKey returns the next key index in [0, Keys).
	NextKey() int
	// Keys returns the keyspace size.
	Keys() int
}

// UniformKeys picks keys uniformly.
type UniformKeys struct {
	n int
	r *rand.Rand
}

// NewUniformKeys builds a uniform distribution over n keys.
func NewUniformKeys(n int, seed int64) *UniformKeys {
	return &UniformKeys{n: n, r: rand.New(rand.NewSource(seed))}
}

// NextKey implements KeyDist.
func (u *UniformKeys) NextKey() int { return u.r.Intn(u.n) }

// Keys implements KeyDist.
func (u *UniformKeys) Keys() int { return u.n }

// ZipfKeys picks keys with Zipfian popularity (hot-key skew).
type ZipfKeys struct {
	n int
	z *rand.Zipf
}

// NewZipfKeys builds a Zipf distribution over n keys with skew s > 1
// (1.1 is a mild production-like skew; larger is hotter).
func NewZipfKeys(n int, s float64, seed int64) *ZipfKeys {
	r := rand.New(rand.NewSource(seed))
	return &ZipfKeys{n: n, z: rand.NewZipf(r, s, 1, uint64(n-1))}
}

// NextKey implements KeyDist.
func (z *ZipfKeys) NextKey() int { return int(z.z.Uint64()) }

// Keys implements KeyDist.
func (z *ZipfKeys) Keys() int { return z.n }

// SizeDist selects value sizes.
type SizeDist interface {
	NextSize() int
}

// FixedSize always returns one size.
type FixedSize int

// NextSize implements SizeDist.
func (f FixedSize) NextSize() int { return int(f) }

// BimodalSize models the small-values-heavy-tail shape of production KV
// traces: smallFrac of values are Small bytes, the rest Large.
type BimodalSize struct {
	Small, Large int
	SmallFrac    float64
	r            *rand.Rand
}

// NewBimodalSize builds a bimodal size distribution.
func NewBimodalSize(small, large int, smallFrac float64, seed int64) *BimodalSize {
	return &BimodalSize{Small: small, Large: large, SmallFrac: smallFrac,
		r: rand.New(rand.NewSource(seed))}
}

// NextSize implements SizeDist.
func (b *BimodalSize) NextSize() int {
	if b.r.Float64() < b.SmallFrac {
		return b.Small
	}
	return b.Large
}

// Generator produces a deterministic operation stream.
type Generator struct {
	keys      KeyDist
	sizes     SizeDist
	readRatio float64
	r         *rand.Rand

	reads, writes int64
}

// NewGenerator builds a generator. readRatio in [0,1] is the fraction of
// GETs.
func NewGenerator(keys KeyDist, sizes SizeDist, readRatio float64, seed int64) *Generator {
	return &Generator{
		keys:      keys,
		sizes:     sizes,
		readRatio: readRatio,
		r:         rand.New(rand.NewSource(seed)),
	}
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	op := Op{Key: fmt.Sprintf("key-%06d", g.keys.NextKey())}
	if g.r.Float64() < g.readRatio {
		op.IsRead = true
		g.reads++
	} else {
		op.ValueLen = g.sizes.NextSize()
		g.writes++
	}
	return op
}

// Counts returns the generated read/write totals.
func (g *Generator) Counts() (reads, writes int64) { return g.reads, g.writes }

// Presets match common benchmark shapes.

// YCSBStyleB returns a read-heavy (95/5) Zipf workload, the YCSB-B shape.
func YCSBStyleB(keys int, seed int64) *Generator {
	return NewGenerator(NewZipfKeys(keys, 1.1, seed),
		NewBimodalSize(128, 4096, 0.9, seed+1), 0.95, seed+2)
}

// UniformSmall returns a uniform 50/50 workload with small fixed values.
func UniformSmall(keys int, seed int64) *Generator {
	return NewGenerator(NewUniformKeys(keys, seed), FixedSize(64), 0.5, seed+1)
}
