// Live libOS switching: descriptor adoption and detachment.
//
// Promotion (catnap -> catnip) detaches a socket's protocol object
// from its FD without closing it, so the connection survives while a
// kernel-bypass libOS takes over the same netstack. Demotion adopts a
// live connection or listener back under a fresh FD. Both are control-
// plane operations — no syscall or copy costs are charged, matching
// how a real handoff (e.g. LibrettOS switching a service between its
// network server and direct mode) moves ownership without touching
// the data path.
package kernel

import "demikernel/internal/netstack"

// DetachConn removes fd from the descriptor table WITHOUT closing the
// underlying TCP connection, and returns the live connection object.
func (k *Kernel) DetachConn(fd FD) (*netstack.TCPConn, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return nil, err
	}
	if e.kind != fdTCPConn {
		return nil, ErrBadFD
	}
	k.mu.Lock()
	e.closed = true
	delete(k.fds, fd)
	k.mu.Unlock()
	return e.conn, nil
}

// DetachListener removes fd from the descriptor table WITHOUT closing
// the underlying listener, and returns the live listener object.
func (k *Kernel) DetachListener(fd FD) (*netstack.TCPListener, error) {
	e, err := k.lookup(fd)
	if err != nil {
		return nil, err
	}
	if e.kind != fdTCPListener {
		return nil, ErrBadFD
	}
	k.mu.Lock()
	e.closed = true
	delete(k.fds, fd)
	k.mu.Unlock()
	return e.listener, nil
}

// AdoptConn wraps a live TCP connection (typically one exported from a
// kernel-bypass libOS during demotion) in a fresh descriptor.
func (k *Kernel) AdoptConn(c *netstack.TCPConn) FD {
	return k.newFD(&fdEntry{kind: fdTCPConn, conn: c})
}

// AdoptListener wraps a live TCP listener in a fresh descriptor.
func (k *Kernel) AdoptListener(l *netstack.TCPListener) FD {
	return k.newFD(&fdEntry{kind: fdTCPListener, listener: l})
}
