package kv

import (
	"bytes"
	"fmt"
	"testing"

	"demikernel/internal/libos/catfish"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

func durableFixture(t *testing.T, pushdown bool) (*DurableStore, *catfish.Transport) {
	t.Helper()
	model := simclock.Datacenter2019()
	dev := spdk.New(&model, spdk.Config{})
	tr, err := catfish.New(&model, dev)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []spdk.KV
	for i := 0; i < 64; i++ {
		pairs = append(pairs, spdk.KV{
			Key: []byte(fmt.Sprintf("user:%03d", i)),
			Val: []byte(fmt.Sprintf("profile-%d", i)),
		})
	}
	ds, err := Load(tr, pairs, DurableConfig{Pushdown: pushdown, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ds, tr
}

func TestDurableStoreGet(t *testing.T) {
	for _, pushdown := range []bool{true, false} {
		name := "host"
		if pushdown {
			name = "pushdown"
		}
		t.Run(name, func(t *testing.T) {
			ds, tr := durableFixture(t, pushdown)
			defer ds.Close()
			if ds.Index().Depth < 4 {
				t.Fatalf("index depth = %d, want >= 4 at fanout 2 with 64 keys", ds.Index().Depth)
			}
			for i := 0; i < 64; i++ {
				v, cost, found, err := ds.Get([]byte(fmt.Sprintf("user:%03d", i)))
				if err != nil || !found {
					t.Fatalf("get %d: found=%v err=%v", i, found, err)
				}
				if !bytes.Equal(v, []byte(fmt.Sprintf("profile-%d", i))) {
					t.Fatalf("get %d: %q", i, v)
				}
				if cost == 0 {
					t.Fatal("no cost charged")
				}
			}
			if _, _, found, err := ds.Get([]byte("user:999")); err != nil || found {
				t.Fatalf("miss: found=%v err=%v", found, err)
			}
			if out := tr.Pool().Outstanding(); out != 0 {
				t.Fatalf("%d pooled buffers leaked", out)
			}
		})
	}
}

// The headline contract: with pushdown a GET is one crossing regardless
// of index depth; the host path pays one crossing per hop.
func TestDurableStoreCrossings(t *testing.T) {
	pd, _ := durableFixture(t, true)
	defer pd.Close()
	host, _ := durableFixture(t, false)
	defer host.Close()

	const gets = 16
	for i := 0; i < gets; i++ {
		key := []byte(fmt.Sprintf("user:%03d", i*4))
		v1, _, _, err1 := pd.Get(key)
		v2, _, _, err2 := host.Get(key)
		if err1 != nil || err2 != nil || !bytes.Equal(v1, v2) {
			t.Fatalf("key %q: %q/%v vs %q/%v", key, v1, err1, v2, err2)
		}
	}
	levels := int64(pd.Index().Levels)
	if c := pd.Queue().Stats().Crossings; c != gets {
		t.Fatalf("pushdown crossings = %d, want %d (1 per GET)", c, gets)
	}
	if c := host.Queue().Stats().Crossings; c != gets*levels {
		t.Fatalf("host crossings = %d, want %d (%d hops per GET)", c, gets*levels, levels)
	}
}
