package chaos

import (
	"testing"
	"time"
)

func TestEventsFireInOffsetOrder(t *testing.T) {
	e := New(1)
	var got []string
	record := func(name string) func() {
		return func() { got = append(got, name) }
	}
	// Scheduled out of order on purpose.
	e.At(2*time.Millisecond, "second", record("second"))
	e.At(0, "first", record("first"))
	e.At(5*time.Millisecond, "third", record("third"))

	e.Run(6*time.Millisecond, time.Millisecond)
	if !e.Done() {
		t.Fatal("Run returned before the schedule completed")
	}
	want := []string{"first", "second", "third"}
	fired := e.Fired()
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] || got[i] != want[i] {
			t.Fatalf("order: fired=%v injected=%v, want %v", fired, got, want)
		}
	}
}

func TestEachEventFiresExactlyOnce(t *testing.T) {
	e := New(2)
	count := 0
	e.At(0, "once", func() { count++ })
	e.Start()
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if count != 1 {
		t.Fatalf("event fired %d times, want 1", count)
	}
}

func TestStepReportsDueEvents(t *testing.T) {
	e := New(3)
	e.At(0, "a", func() {})
	e.At(0, "b", func() {})
	e.At(time.Hour, "never", func() {})
	e.Start()
	if n := e.Step(); n != 2 {
		t.Fatalf("Step fired %d, want 2", n)
	}
	if e.Done() {
		t.Fatal("Done with a future event still scheduled")
	}
}

func TestEqualOffsetsFireInSchedulingOrder(t *testing.T) {
	e := New(4)
	var got []string
	for _, name := range []string{"x", "y", "z"} {
		n := name
		e.At(0, n, func() { got = append(got, n) })
	}
	e.Start()
	e.Step()
	if len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("equal-offset order: %v", got)
	}
}

func TestSeededRandDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 32; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("two engines with the same seed diverged")
		}
	}
	if a.Seed() != 7 {
		t.Fatalf("Seed() = %d, want 7", a.Seed())
	}
}

func TestSchedulingAfterStart(t *testing.T) {
	e := New(5)
	e.At(0, "early", func() {})
	e.Start()
	e.Step()
	fired := false
	e.At(0, "late", func() { fired = true }) // offset already elapsed
	e.Step()
	if !fired {
		t.Fatal("event scheduled after Start never fired")
	}
	if f := e.Fired(); len(f) != 2 || f[1] != "late" {
		t.Fatalf("fired = %v", f)
	}
}
