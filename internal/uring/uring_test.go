package uring

import (
	"errors"
	"testing"

	"demikernel/internal/queue"
	"demikernel/internal/sga"
	"demikernel/internal/telemetry"
)

// drive plays the libOS role for a pair against one MemQueue: drain the
// SQ in a burst and issue every op with a slab DoneFunc. MemQueue
// completes inline, so after drive returns the CQ holds the results.
func drive(t *testing.T, p *Pair, mq *queue.MemQueue) int {
	t.Helper()
	var scratch [64]SQE
	total := 0
	for {
		n := p.DrainSQ(scratch[:])
		if n == 0 {
			return total
		}
		total += n
		for i := 0; i < n; i++ {
			e := scratch[i]
			done := p.Arm(e)
			switch e.Op {
			case queue.OpPush:
				mq.Push(e.SGA, e.Cost, done)
			case queue.OpPop:
				mq.Pop(done)
			default:
				t.Fatalf("unknown op %v", e.Op)
			}
		}
	}
}

func payload(s string) sga.SGA {
	return sga.SGA{Segments: []sga.Segment{{Buf: []byte(s)}}}
}

func TestPairSubmitHarvestRoundTrip(t *testing.T) {
	p := NewPair(8)
	mq := queue.NewMemQueue(16)

	// Two pushes and two pops, batch-submitted with distinct tags.
	sqes := []SQE{
		{Op: queue.OpPush, QD: 3, Tag: 100, SGA: payload("alpha")},
		{Op: queue.OpPush, QD: 3, Tag: 101, SGA: payload("beta")},
		{Op: queue.OpPop, QD: 3, Tag: 200},
		{Op: queue.OpPop, QD: 3, Tag: 201},
	}
	if n := p.SubmitN(sqes); n != 4 {
		t.Fatalf("SubmitN = %d, want 4", n)
	}
	if got := p.Outstanding(); got != 4 {
		t.Fatalf("Outstanding = %d, want 4", got)
	}
	if n := drive(t, p, mq); n != 4 {
		t.Fatalf("drained %d SQEs, want 4", n)
	}

	var cqes [8]CQE
	n := p.Harvest(cqes[:])
	if n != 4 {
		t.Fatalf("Harvest = %d, want 4", n)
	}
	byTag := map[uint64]CQE{}
	for _, c := range cqes[:n] {
		byTag[c.Tag] = c
	}
	for _, tag := range []uint64{100, 101, 200, 201} {
		c, ok := byTag[tag]
		if !ok {
			t.Fatalf("no CQE for tag %d", tag)
		}
		if c.Err != nil {
			t.Fatalf("tag %d: err = %v", tag, c.Err)
		}
	}
	if got := string(byTag[200].SGA.Segments[0].Buf); got != "alpha" {
		t.Fatalf("pop tag 200 = %q, want alpha", got)
	}
	if got := string(byTag[201].SGA.Segments[0].Buf); got != "beta" {
		t.Fatalf("pop tag 201 = %q, want beta", got)
	}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("Outstanding after harvest = %d, want 0", got)
	}
}

func TestPairReservationBackpressure(t *testing.T) {
	p := NewPair(4) // rounds to 4
	mq := queue.NewMemQueue(16)

	// Fill every reservation with pops that will not complete (queue
	// empty, pops park as waiters).
	for i := 0; i < p.Cap(); i++ {
		if !p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: uint64(i)}) {
			t.Fatalf("Submit %d refused with reservations free", i)
		}
	}
	if p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 99}) {
		t.Fatal("Submit accepted past capacity")
	}
	if p.sqFullSpins.Load() == 0 {
		t.Fatal("sq_full_spins not counted on refused submit")
	}
	drive(t, p, mq)

	// Complete one parked pop; its reservation frees only at harvest.
	mq.Push(payload("x"), 0, func(queue.Completion) {})
	var cqes [4]CQE
	if n := p.Harvest(cqes[:]); n != 1 {
		t.Fatalf("Harvest = %d, want 1", n)
	}
	cqes[0].SGA.Free()
	if !p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 100}) {
		t.Fatal("Submit refused after harvest freed a reservation")
	}
}

func TestPairResetFlushesBothRings(t *testing.T) {
	p := NewPair(8)
	mq := queue.NewMemQueue(16)
	boom := errors.New("local reset")

	// One completed-but-unharvested CQE...
	mq.Push(payload("pre"), 0, func(queue.Completion) {})
	p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 1})
	drive(t, p, mq)
	// ...one armed-and-parked op (pop on empty queue)...
	p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 2})
	drive(t, p, mq)
	// ...and two posted-but-undrained SQEs.
	p.Submit(SQE{Op: queue.OpPush, QD: 1, Tag: 3, SGA: payload("z")})
	p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 4})

	fsq, fcq := p.Reset(boom)
	if fsq != 2 {
		t.Fatalf("flushed SQEs = %d, want 2", fsq)
	}
	if fcq != 1 {
		t.Fatalf("pending CQEs at flush = %d, want 1", fcq)
	}

	// The parked op completes late (the transport kills it on crash in
	// real life); its CQE must still resolve to the reset error.
	mq.Close() // parked pop completes with ErrClosed

	var cqes [8]CQE
	n := p.Harvest(cqes[:])
	if n != 4 {
		t.Fatalf("Harvest after reset = %d, want 4 (tags 1-4)", n)
	}
	seen := map[uint64]bool{}
	for _, c := range cqes[:n] {
		if !errors.Is(c.Err, boom) {
			t.Fatalf("tag %d: err = %v, want reset error", c.Tag, c.Err)
		}
		if len(c.SGA.Segments) != 0 {
			t.Fatalf("tag %d: payload survived reset harvest", c.Tag)
		}
		seen[c.Tag] = true
	}
	for tag := uint64(1); tag <= 4; tag++ {
		if !seen[tag] {
			t.Fatalf("tag %d never resolved", tag)
		}
	}
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", p.Outstanding())
	}

	// The pair is poisoned: no new submissions, Reset is idempotent.
	if p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 9}) {
		t.Fatal("Submit accepted after reset")
	}
	if !errors.Is(p.ResetErr(), boom) {
		t.Fatalf("ResetErr = %v", p.ResetErr())
	}
	if fsq, fcq := p.Reset(boom); fsq != 0 || fcq != 0 {
		t.Fatalf("second Reset flushed %d/%d, want 0/0", fsq, fcq)
	}
}

func TestPairDoubleCompletionDropped(t *testing.T) {
	p := NewPair(4)
	p.Submit(SQE{Op: queue.OpPop, QD: 1, Tag: 7})
	var scratch [4]SQE
	if n := p.DrainSQ(scratch[:]); n != 1 {
		t.Fatalf("drained %d, want 1", n)
	}
	done := p.Arm(scratch[0])
	done(queue.Completion{Kind: queue.OpPop, SGA: payload("a")})
	done(queue.Completion{Kind: queue.OpPop, SGA: payload("stale")})
	if got := p.cqPosted.Load(); got != 1 {
		t.Fatalf("cq_posted = %d, want 1 (stale completion must drop)", got)
	}
	var cqes [4]CQE
	if n := p.Harvest(cqes[:]); n != 1 || cqes[0].Tag != 7 {
		t.Fatalf("Harvest = %d tag %d, want 1 tag 7", n, cqes[0].Tag)
	}
}

func TestPairTelemetryAndSpans(t *testing.T) {
	p := NewPair(8)
	mq := queue.NewMemQueue(16)
	reg := telemetry.NewRegistry()
	p.RegisterTelemetry(reg, "uring")
	spans := telemetry.NewSpanTable("test")
	spans.Enable()
	p.SetSpans(spans)

	mq.Push(payload("s"), 0, func(queue.Completion) {})
	p.Submit(SQE{Op: queue.OpPop, QD: 5, Tag: 1})
	drive(t, p, mq)
	var cqes [4]CQE
	if n := p.Harvest(cqes[:]); n != 1 {
		t.Fatalf("Harvest = %d, want 1", n)
	}
	cqes[0].SGA.Free()

	snap := reg.Snapshot()
	want := map[string]int64{
		"uring.sq_posted":        1,
		"uring.sq_drained":       1,
		"uring.cq_posted":        1,
		"uring.cq_harvested":     1,
		"uring.outstanding":      0,
		"uring.drain_batch.le_1": 1,
	}
	for name, v := range want {
		got, ok := snap.Get(name)
		if !ok || got != v {
			t.Fatalf("%s = %d (ok=%v), want %d", name, got, ok, v)
		}
	}

	sums := spans.Summaries()
	if len(sums) != 1 || sums[0].QD != 5 || sums[0].Ops != 1 {
		t.Fatalf("span summaries = %+v, want one op on qd 5", sums)
	}
}
