package echo

import (
	"testing"
	"time"

	demi "demikernel"
)

func newPair(t *testing.T, flavor string, seed int64) (*Server, *Client, *demi.Cluster, func()) {
	t.Helper()
	c := demi.NewCluster(seed)
	mk := func(host byte) *demi.Node {
		switch flavor {
		case "catnip":
			return c.MustSpawn(demi.Catnip, demi.WithHost(host))
		case "catnap":
			return c.MustSpawn(demi.Catnap, demi.WithHost(host))
		case "catmint":
			return c.MustSpawn(demi.Catmint, demi.WithHost(host))
		default:
			t.Fatalf("unknown flavor %q", flavor)
			return nil
		}
	}
	srvNode, cliNode := mk(1), mk(2)
	srv := NewServer(srvNode.LibOS)
	if err := srv.Listen(7); err != nil {
		t.Fatal(err)
	}
	stopSrv := srvNode.Background()
	stopCli := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		close(stopServe)
		stopCli()
		stopSrv()
	}
	return srv, cli, c, cleanup
}

func testEcho(t *testing.T, flavor string, seed int64) {
	srv, cli, _, cleanup := newPair(t, flavor, seed)
	defer cleanup()
	for i := 0; i < 5; i++ {
		cost, err := cli.RTT([]byte("ping"), 0)
		if err != nil {
			t.Fatalf("rtt %d: %v", i, err)
		}
		if cost == 0 {
			t.Fatal("zero round-trip cost")
		}
	}
	// The server counts an echo after its push completes, which can
	// trail the client's receive slightly; poll briefly.
	deadline := time.Now().Add(time.Second)
	for srv.Echoed() != 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Echoed() != 5 {
		t.Fatalf("Echoed = %d", srv.Echoed())
	}
}

func TestEchoOverCatnip(t *testing.T)  { testEcho(t, "catnip", 31) }
func TestEchoOverCatnap(t *testing.T)  { testEcho(t, "catnap", 32) }
func TestEchoOverCatmint(t *testing.T) { testEcho(t, "catmint", 33) }

func TestKernelPathCostsMore(t *testing.T) {
	// The E1 shape in miniature: the same echo costs more virtual
	// latency over the kernel (catnap) than over kernel-bypass
	// (catnip), by at least the syscall + copy + kernel-stack deltas.
	_, catnipCli, _, cleanup1 := newPair(t, "catnip", 34)
	defer cleanup1()
	_, catnapCli, _, cleanup2 := newPair(t, "catnap", 34)
	defer cleanup2()

	payload := make([]byte, 1024)
	var bypass, legacy demi.Lat
	for i := 0; i < 10; i++ {
		c1, err := catnipCli.RTT(payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := catnapCli.RTT(payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		bypass += c1
		legacy += c2
	}
	if legacy <= bypass {
		t.Fatalf("kernel path (%v) should cost more than bypass (%v)", legacy, bypass)
	}
}

func TestServerAppCostCharged(t *testing.T) {
	srv, cli, c, cleanup := newPair(t, "catnip", 35)
	defer cleanup()
	base, err := cli.RTT([]byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.AppCost = c.Model.AppRequestNS * 10
	loaded, err := cli.RTT([]byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded < base+c.Model.AppRequestNS*9 {
		t.Fatalf("app cost not charged: base %v loaded %v", base, loaded)
	}
}
