package sched_test

import (
	"sync/atomic"
	"testing"
	"time"

	demi "demikernel"
	"demikernel/internal/core"
	"demikernel/internal/queue"
	"demikernel/internal/sched"
)

func TestEventLoopMemoryQueues(t *testing.T) {
	c := demi.NewCluster(81)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	el := sched.New(node.LibOS)

	q := node.Queue()
	var got []string
	el.OnPop(q, false, func(qd core.QD, comp queue.Completion) {
		got = append(got, string(comp.SGA.Bytes()))
	})
	if el.Pending() != 1 {
		t.Fatalf("pending = %d", el.Pending())
	}
	el.Push(q, demi.NewSGA([]byte("event")), 0, nil)
	for i := 0; i < 100 && len(got) == 0; i++ {
		el.Tick()
	}
	if len(got) != 1 || got[0] != "event" {
		t.Fatalf("got %v", got)
	}
	if el.Pending() != 0 {
		t.Fatalf("pending after dispatch = %d", el.Pending())
	}
}

func TestEventLoopRearm(t *testing.T) {
	c := demi.NewCluster(82)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	el := sched.New(node.LibOS)
	q := node.Queue()
	count := 0
	el.OnPop(q, true, func(core.QD, queue.Completion) { count++ })
	for i := 0; i < 5; i++ {
		el.Push(q, demi.NewSGA([]byte{byte(i)}), 0, nil)
	}
	for i := 0; i < 200 && count < 5; i++ {
		el.Tick()
	}
	if count != 5 {
		t.Fatalf("rearm served %d of 5", count)
	}
	// Still armed for the next one.
	if el.Pending() == 0 {
		t.Fatal("rearm did not leave a pop armed")
	}
}

func TestEventLoopPushCallback(t *testing.T) {
	c := demi.NewCluster(83)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	el := sched.New(node.LibOS)
	q := node.Queue()
	pushed := false
	el.Push(q, demi.NewSGA([]byte("x")), 0, func(core.QD, queue.Completion) { pushed = true })
	for i := 0; i < 100 && !pushed; i++ {
		el.Tick()
	}
	if !pushed {
		t.Fatal("push callback never fired")
	}
}

// TestMemcachedShapeServer builds the §4.4 vision: an event-driven
// server (the shape memcached has under libevent) running over
// kernel-bypass transparently — accept handler arms a per-connection
// request loop, request handler pushes the response.
func TestMemcachedShapeServer(t *testing.T) {
	c := demi.NewCluster(84)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))
	stopCli := cliNode.Background()
	defer stopCli()

	lqd, err := srvNode.Socket()
	if err != nil {
		t.Fatal(err)
	}
	srvNode.Bind(lqd, demi.Addr{Port: 11211})
	srvNode.Listen(lqd)

	el := sched.New(srvNode.LibOS)
	var served atomic.Int64
	el.OnAccept(lqd, func(conn core.QD) {
		el.OnPop(conn, true, func(qd core.QD, comp queue.Completion) {
			if comp.Err != nil {
				return
			}
			// Echo the request back; the completion carried the data,
			// no extra call needed (§4.4 benefit #1).
			el.Push(qd, comp.SGA, 0, nil)
			served.Add(1)
		})
	})
	stop := make(chan struct{})
	defer close(stop)
	go el.Run(stop)

	cqd, _ := cliNode.Socket()
	if err := cliNode.Connect(cqd, c.AddrOf(srvNode, 11211)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cliNode.BlockingPush(cqd, demi.NewSGA([]byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
		comp, err := cliNode.BlockingPop(cqd)
		if err != nil {
			t.Fatalf("rtt %d: %v", i, err)
		}
		if comp.SGA.Bytes()[0] != byte(i) {
			t.Fatalf("echo %d corrupted", i)
		}
	}
	deadline := time.Now().Add(time.Second)
	for served.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if served.Load() != 10 {
		t.Fatalf("served = %d", served.Load())
	}
	if el.Dispatched() < 11 { // 1 accept + 10 requests
		t.Fatalf("dispatched = %d", el.Dispatched())
	}
}

func TestEventLoopMultipleQueues(t *testing.T) {
	c := demi.NewCluster(85)
	node := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	el := sched.New(node.LibOS)
	q1, q2 := node.Queue(), node.Queue()
	var from1, from2 int
	el.OnPop(q1, true, func(core.QD, queue.Completion) { from1++ })
	el.OnPop(q2, true, func(core.QD, queue.Completion) { from2++ })
	for i := 0; i < 3; i++ {
		el.Push(q1, demi.NewSGA([]byte("a")), 0, nil)
	}
	el.Push(q2, demi.NewSGA([]byte("b")), 0, nil)
	for i := 0; i < 200 && from1+from2 < 4; i++ {
		el.Tick()
	}
	if from1 != 3 || from2 != 1 {
		t.Fatalf("from1=%d from2=%d", from1, from2)
	}
}
