package catfish

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
)

func newTransport(t *testing.T) (*Transport, *spdk.Device) {
	t.Helper()
	model := simclock.Datacenter2019()
	dev := spdk.New(&model, spdk.Config{})
	tr, err := New(&model, dev)
	if err != nil {
		t.Fatal(err)
	}
	return tr, dev
}

func testPairs(n int) []spdk.KV {
	var kvs []spdk.KV
	for i := 0; i < n; i++ {
		kvs = append(kvs, spdk.KV{
			Key: []byte(fmt.Sprintf("key-%04d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		})
	}
	return kvs
}

// get runs one Push+Pop round trip against a lookup queue.
func get(t *testing.T, tr *Transport, q *LookupQueue, key []byte) ([]byte, error) {
	t.Helper()
	ks := tr.AllocSGA(len(key))
	copy(ks.Segments[0].Buf, key)
	var pushErr error
	q.Push(ks, 0, func(c queue.Completion) { pushErr = c.Err })
	if pushErr != nil {
		t.Fatal(pushErr)
	}
	var res queue.Completion
	got := false
	q.Pop(func(c queue.Completion) { res = c; got = true })
	for i := 0; !got; i++ {
		tr.Poll()
		if i > 10000 {
			t.Fatal("lookup never completed")
		}
	}
	if res.Err != nil {
		return nil, res.Err
	}
	v := append([]byte(nil), res.SGA.Bytes()...)
	res.SGA.Free()
	return v, nil
}

func openLookup(t *testing.T, tr *Transport, kvs []spdk.KV, cfg LookupConfig) (*LookupQueue, *spdk.Index) {
	t.Helper()
	idx, err := tr.BuildIndex(kvs, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tr.OpenLookup(idx, offload.IndexLookup(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q, idx
}

// The central equivalence: pushdown and host-fallback modes return
// byte-identical results for every key, but pushdown crosses once per
// GET while fallback crosses once per hop.
func TestLookupQueueModesAgree(t *testing.T) {
	kvs := testPairs(32) // depth 4 at fanout 2
	tr1, dev1 := newTransport(t)
	pd, idx := openLookup(t, tr1, kvs, LookupConfig{Pushdown: true})
	tr2, _ := newTransport(t)
	host, idx2 := openLookup(t, tr2, kvs, LookupConfig{Pushdown: false})
	if idx.Levels != idx2.Levels {
		t.Fatalf("index shapes differ: %d vs %d levels", idx.Levels, idx2.Levels)
	}

	probes := append(testPairs(32), spdk.KV{Key: []byte("nope"), Val: nil}, spdk.KV{Key: []byte("zzzz"), Val: nil})
	for _, kv := range probes {
		v1, err1 := get(t, tr1, pd, kv.Key)
		v2, err2 := get(t, tr2, host, kv.Key)
		if !errors.Is(err1, err2) && !errors.Is(err2, err1) {
			t.Fatalf("key %q: pushdown err %v != host err %v", kv.Key, err1, err2)
		}
		if !bytes.Equal(v1, v2) {
			t.Fatalf("key %q: pushdown %q != host %q", kv.Key, v1, v2)
		}
	}

	n := int64(len(probes))
	ps, hs := pd.Stats(), host.Stats()
	if ps.Lookups != n || hs.Lookups != n {
		t.Fatalf("lookups = %d/%d, want %d", ps.Lookups, hs.Lookups, n)
	}
	if ps.Crossings != n {
		t.Fatalf("pushdown crossings = %d, want exactly 1 per GET (%d)", ps.Crossings, n)
	}
	if want := n * int64(idx.Levels); hs.Crossings > want || hs.Crossings < n*int64(1) {
		t.Fatalf("host crossings = %d, want up to %d (one per hop)", hs.Crossings, want)
	}
	// The 32 hits each took Levels hops host-side.
	if hs.Crossings < 32*int64(idx.Levels) {
		t.Fatalf("host crossings = %d, want >= %d", hs.Crossings, 32*idx.Levels)
	}
	if st := dev1.PushdownStats(); st.Inflight != 0 {
		t.Fatalf("inflight = %d after drain", st.Inflight)
	}
	// No storage buffers leaked by either mode.
	if out := tr1.Pool().Outstanding(); out != 0 {
		t.Fatalf("pushdown transport leaks %d pooled buffers", out)
	}
	if out := tr2.Pool().Outstanding(); out != 0 {
		t.Fatalf("host transport leaks %d pooled buffers", out)
	}
}

func TestLookupQueueMissIsTyped(t *testing.T) {
	tr, _ := newTransport(t)
	q, _ := openLookup(t, tr, testPairs(8), LookupConfig{Pushdown: true})
	if _, err := get(t, tr, q, []byte("absent")); !errors.Is(err, spdk.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLookupQueueClosedAndUninstall(t *testing.T) {
	tr, dev := newTransport(t)
	q, idx := openLookup(t, tr, testPairs(8), LookupConfig{Pushdown: true})
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	var res queue.Completion
	q.Pop(func(c queue.Completion) { res = c })
	if !errors.Is(res.Err, queue.ErrClosed) {
		t.Fatalf("pop after close: %v", res.Err)
	}
	// The pushdown slot was uninstalled with the queue.
	err := dev.SubmitLookup(0, idx.Root, []byte("k"), func(spdk.LookupResult) {})
	if !errors.Is(err, spdk.ErrNoProg) {
		t.Fatalf("slot not uninstalled: %v", err)
	}
}

// A controller reset mid-traversal surfaces exactly one typed error on
// the Pop side; the queue and its pool stay leak-free.
func TestLookupQueueResetMidTraversal(t *testing.T) {
	tr, dev := newTransport(t)
	q, _ := openLookup(t, tr, testPairs(32), LookupConfig{Pushdown: true})

	key := tr.AllocSGA(8)
	copy(key.Segments[0].Buf, "key-0000")
	q.Push(key, 0, func(queue.Completion) {})
	dev.Pump() // one hop in
	dev.ControllerReset(0)

	var res queue.Completion
	got := false
	q.Pop(func(c queue.Completion) { res = c; got = true })
	for i := 0; !got; i++ {
		tr.Poll()
		if i > 10000 {
			t.Fatal("typed error completion never surfaced")
		}
	}
	if !errors.Is(res.Err, spdk.ErrDeviceReset) {
		t.Fatalf("err = %v, want ErrDeviceReset", res.Err)
	}
	st := dev.PushdownStats()
	if st.ResetAborts != 1 || st.Inflight != 0 {
		t.Fatalf("resetAborts/inflight = %d/%d", st.ResetAborts, st.Inflight)
	}
	if out := tr.Pool().Outstanding(); out != 0 {
		t.Fatalf("%d pooled buffers leaked across the reset", out)
	}
}

func TestBufPoolRecyclesByClass(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts nondeterministically under -race")
	}
	var p BufPool
	b := p.Get(100)
	if len(b.Bytes()) != 100 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	b.Release()
	b2 := p.Get(64) // same 128-byte class: must come from the free list
	st := p.Stats()
	if st.Pooled != 1 || st.Recycled != 1 {
		t.Fatalf("pooled/recycled = %d/%d, want 1/1", st.Pooled, st.Recycled)
	}
	if st.Outstanding != 1 {
		t.Fatalf("outstanding = %d", st.Outstanding)
	}
	b2.Release()

	// Oversized requests fall back to dedicated buffers.
	big := p.Get(1 << 20)
	big.Release()
	if st := p.Stats(); st.Outstanding != 0 {
		t.Fatalf("outstanding = %d after full release", st.Outstanding)
	}
}

func TestBufPoolDoubleReleasePanics(t *testing.T) {
	var p BufPool
	b := p.Get(10)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

func TestBufPoolSGAFreeReleases(t *testing.T) {
	var p BufPool
	b := p.Get(32)
	s := b.SGA()
	copy(s.Segments[0].Buf, "payload")
	s.Free()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after SGA free", p.Outstanding())
	}
	// SGA frees are idempotent per copy; the underlying buffer release
	// must still happen exactly once.
	s.Free()
}

// AllocSGA + durable push: the libOS consumes the staging buffer once
// the record is on media, so the pool gauge returns to zero without the
// app ever freeing it.
func TestAllocSGAConsumedByDurablePush(t *testing.T) {
	tr, _ := newTransport(t)
	fq, err := tr.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := tr.AllocSGA(64)
		copy(s.Segments[0].Buf, fmt.Sprintf("record-%d", i))
		var pushErr error
		fq.Push(s, 0, func(c queue.Completion) { pushErr = c.Err })
		if pushErr != nil {
			t.Fatal(pushErr)
		}
	}
	if out := tr.Pool().Outstanding(); out != 0 {
		t.Fatalf("outstanding = %d after 10 durable pushes, want 0", out)
	}
	st := tr.Pool().Stats()
	if st.Pooled == 0 {
		t.Fatal("staging buffers never recycled")
	}
	// The records are intact (the pool freed staging copies, not data).
	var rec queue.Completion
	fq.Pop(func(c queue.Completion) { rec = c })
	if rec.Err != nil || string(rec.SGA.Bytes()[:8]) != "record-0" {
		t.Fatalf("pop: %q, %v", rec.SGA.Bytes(), rec.Err)
	}
}

// The steady-state GET through the whole catfish face is allocation
// free: pooled key staging, pooled value buffers, recycled results.
func TestLookupQueueSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc fences are not meaningful under -race (sync.Pool drops Puts)")
	}
	tr, _ := newTransport(t)
	q, _ := openLookup(t, tr, testPairs(8), LookupConfig{Pushdown: true})
	key := []byte("key-0003")
	var popDone queue.DoneFunc
	var res queue.Completion
	got := false
	popDone = func(c queue.Completion) { res = c; got = true }
	pushDone := func(c queue.Completion) {}
	run := func() {
		got = false
		ks := tr.AllocSGA(len(key))
		copy(ks.Segments[0].Buf, key)
		q.Push(ks, 0, pushDone)
		q.Pop(popDone)
		for !got {
			tr.Poll()
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		res.SGA.Free()
	}
	run() // warm every pool
	avg := testing.AllocsPerRun(200, run)
	if avg != 0 {
		t.Fatalf("steady-state GET allocates %v/op, want 0", avg)
	}
}
