package experiments

// E16 — syscall-free submission. The tentpole of the ring datapath:
// the same echo workload measured over the legacy per-op path (one
// libOS call per Push/Pop/Wait, completer token per op) and over the
// SQ/CQ shared-memory rings at increasing batch sizes. The virtual
// RTT tracks the cost model; the ring counters prove the crossings
// are gone — operations are posted and harvested through shared
// memory, drained in bursts by the libOS poll loop.

import (
	demi "demikernel"
	"demikernel/internal/apps/echo"
	"demikernel/internal/metrics"
	"demikernel/internal/uring"
)

const e16RingCap = 64

// newRingEchoRig is newEchoRig with SQ/CQ rings attached on both sides
// before the server starts accepting — ring mode is a per-connection
// commitment, so it must be on before the dial.
func newRingEchoRig(seed int64) (*echoRig, error) {
	c := demi.NewCluster(seed)
	srvNode, err := newNode(c, "catnip", demi.NodeConfig{Host: 1})
	if err != nil {
		return nil, err
	}
	cliNode, err := newNode(c, "catnip", demi.NodeConfig{Host: 2})
	if err != nil {
		return nil, err
	}
	srv := echo.NewServer(srvNode.LibOS)
	srv.AppCost = c.Model.AppRequestNS
	if err := srv.Listen(7); err != nil {
		return nil, err
	}
	srv.EnableRing(e16RingCap)
	stopS := srvNode.Background()
	stopC := cliNode.Background()
	stopServe := make(chan struct{})
	go srv.Run(stopServe)

	cli := echo.NewClient(cliNode.LibOS)
	if err := cli.Connect(c.AddrOf(srvNode, 7)); err != nil {
		return nil, err
	}
	cli.EnableRing(e16RingCap)
	return &echoRig{
		cluster: c,
		server:  srv,
		client:  cli,
		srvNode: srvNode,
		cliNode: cliNode,
		stops:   []func(){func() { close(stopServe) }, stopC, stopS},
	}, nil
}

func runE16(seed int64) (*Result, error) {
	const ops = 512
	payload := make([]byte, 64)

	// Legacy per-op path on its own rig: one libOS call per Push/Pop/
	// Wait, completer token per op.
	legacy, err := newEchoRig("catnip", seed, 0)
	if err != nil {
		return nil, err
	}
	perOp, err := legacy.measureEcho(64, ops)
	legacy.close()
	if err != nil {
		return nil, err
	}
	perOpMean := perOp.Summarize().Mean

	// Ring rig: same cluster seed and cost model, only the submission
	// path differs.
	r, err := newRingEchoRig(seed)
	if err != nil {
		return nil, err
	}
	defer r.close()

	res := &Result{}
	tbl := metrics.NewTable("64B echo RTT: per-op calls vs SQ/CQ rings (virtual)",
		"path", "batch", "mean RTT", "sq posted", "sq drained", "cq harvested")
	tbl.AddRow("per-op", 1, perOpMean, 0, 0, 0)

	counters := func() uring.Counters {
		var total uring.Counters
		for _, p := range []*uring.Pair{r.client.Ring(), r.server.Ring()} {
			c := p.CountersSnapshot()
			total.SQPosted += c.SQPosted
			total.SQDrained += c.SQDrained
			total.CQHarvested += c.CQHarvested
			for i := range c.DrainBatch {
				total.DrainBatch[i] += c.DrainBatch[i]
			}
		}
		return total
	}

	var batch1Mean, batch32Mean int64
	prev := counters()
	for _, batch := range []int{1, 8, 32} {
		var h metrics.Histogram
		for i := 0; i < ops; i += batch {
			cost, err := r.client.RTTBatch(payload, r.cluster.Model.AppRequestNS, batch)
			if err != nil {
				return nil, err
			}
			h.Record(cost)
		}
		mean := h.Summarize().Mean
		now := counters()
		tbl.AddRow("ring", batch, mean,
			now.SQPosted-prev.SQPosted, now.SQDrained-prev.SQDrained, now.CQHarvested-prev.CQHarvested)
		prev = now
		switch batch {
		case 1:
			batch1Mean = int64(mean)
		case 32:
			batch32Mean = int64(mean)
		}
	}
	res.Tables = append(res.Tables, tbl)

	// Shape 1 — the crossings are gone: every operation travelled the
	// rings (posted == drained, all nonzero) and every completion was
	// harvested except the server's armed pop window, which is still
	// legitimately outstanding when the run ends.
	total := counters()
	outstanding := total.SQPosted - total.CQHarvested
	res.check("ring path carries every op",
		total.SQPosted > 0 && total.SQPosted == total.SQDrained &&
			outstanding >= 0 && outstanding <= e16RingCap,
		"sq_posted=%d sq_drained=%d cq_harvested=%d (outstanding=%d, the armed pop window)",
		total.SQPosted, total.SQDrained, total.CQHarvested, outstanding)

	// Shape 2 — batching amortizes the poll: with batch 32 in flight the
	// libOS drains multiple SQEs per sweep, so the drain-batch histogram
	// must have mass above the single-op bucket.
	var multi int64
	for i, n := range total.DrainBatch {
		if i > 0 {
			multi += n
		}
	}
	res.check("SQ drains in bursts", multi > 0,
		"drain batches >1 op: %d", multi)

	// Shape 3 — the ring is not a slower road: a single syscall-free
	// round trip costs no more virtual time than the per-op path (the
	// data path underneath is identical), and pipelining 32 at a time
	// adds only marginal virtual queueing (< 10%). The real-time win —
	// 6998 → ~1900 ns/op wall clock at batch 32 — is measured by
	// BenchmarkURing_EchoRTT and persisted in BENCH_uring.json; virtual
	// time can't see it because it charges the cost model, not the
	// submission machinery.
	res.check("ring RTT <= per-op RTT at batch 1", batch1Mean <= int64(perOpMean),
		"ring batch1 mean %dns vs per-op mean %dns", batch1Mean, int64(perOpMean))
	res.check("batch 32 within 10% of batch 1 (virtual)", batch32Mean <= batch1Mean*11/10,
		"batch32 mean %dns vs batch1 mean %dns", batch32Mean, batch1Mean)
	return res, nil
}
