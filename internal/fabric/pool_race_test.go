package fabric

import (
	"sync"
	"testing"
)

// TestFrameBufRefsRaceStress pins the legal-use side of the audited
// Retain/Release contract under -race: Retain is only called while the
// caller itself holds a live reference. Under that discipline the count
// never flips 0→1, so no released buffer can be resurrected and the
// pool's recycle fence never fires, no matter how the retains, releases,
// reads, and pool recycling interleave across goroutines.
func TestFrameBufRefsRaceStress(t *testing.T) {
	p := NewFramePool()
	const (
		rounds  = 300
		fanout  = 8
		workers = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				b := p.Get(512)
				b.Bytes()[0] = byte(i)
				// Fan the buffer out to concurrent consumers. Each
				// Retain happens while the spawning goroutine still
				// holds its own reference — the audited invariant.
				var inner sync.WaitGroup
				for f := 0; f < fanout; f++ {
					b.Retain()
					inner.Add(1)
					go func() {
						defer inner.Done()
						_ = b.Bytes()[0] // read while referenced
						b.Release()
					}()
				}
				// The spawner drops its own reference immediately —
				// consumers keep the buffer alive; the last of them
				// recycles it while the next loop iteration is already
				// Get-ing from the same pool.
				b.Release()
				inner.Wait()
			}
		}(w)
	}
	wg.Wait()

	st := p.Stats()
	wantLives := int64(workers * rounds)
	if st.Pooled+st.Misses != wantLives {
		t.Fatalf("pool served %d buffers (pooled=%d misses=%d), want %d",
			st.Pooled+st.Misses, st.Pooled, st.Misses, wantLives)
	}
	if st.Recycled == 0 {
		t.Fatal("no buffer was ever recycled: the stress never exercised reuse")
	}
}

// TestFrameBufIllegalRetainPanics verifies the deterministic failure
// mode of the contract: Retain on a fully released buffer (refcount 0)
// must panic rather than resurrect storage the pool may already have
// handed to someone else.
func TestFrameBufIllegalRetainPanics(t *testing.T) {
	p := NewFramePool()
	b := p.Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	b.Retain()
}

// TestFrameBufReleaseUnderflowPanics: releasing more times than retained
// is a bug and must fail loudly.
func TestFrameBufReleaseUnderflowPanics(t *testing.T) {
	p := NewFramePool()
	b := p.Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}
