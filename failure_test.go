package demikernel

// Failure-injection tests: the simulation's fault models (fabric loss and
// reordering, RoCE's lossless-fabric assumption, NVMe controller reset)
// driven through the full Demikernel stack.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/rdma"
)

func TestKVSurvivesLossyFabric(t *testing.T) {
	// The user-level TCP stack under catnip must mask 8% loss and 10%
	// reordering from the application entirely.
	c := NewCluster(201)
	srv := c.MustSpawn(Catnip, WithHost(1))
	cli := c.MustSpawn(Catnip, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 80)
	defer cleanup()

	c.Switch.SetImpairments(fabric.Impairments{LossRate: 0.08, ReorderRate: 0.1})
	for i := 0; i < 30; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 700+i*31)
		msg := NewSGA([]byte(fmt.Sprintf("%03d", i)), payload)
		if _, err := cli.BlockingPush(cqd, msg); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		comp, err := srv.BlockingPop(sqd)
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if !comp.SGA.Equal(msg) {
			t.Fatalf("message %d corrupted under loss", i)
		}
	}
	st := cli.Catnip.Stack().Stats()
	if st.Retransmits+st.FastRetransmits == 0 {
		t.Fatal("loss was configured but never exercised")
	}
}

func TestRDMAQPErrorOnLossyFabric(t *testing.T) {
	// RoCE semantics: the RDMA transport assumes a lossless fabric. A
	// lost frame must surface as a queue-pair error, not silent
	// corruption — and the error must reach the application as a failed
	// operation, not a hang.
	c := NewCluster(202)
	srv := c.MustSpawn(Catmint, WithHost(1))
	cli := c.MustSpawn(Catmint, WithHost(2))
	cqd, sqd, cleanup := connectNodes(t, c, cli, srv, 7)
	defer cleanup()

	// Heavy loss: some SEND or its ACK will vanish. Pipeline the pushes
	// so later frames expose the PSN gap a lost one leaves behind.
	c.Switch.SetImpairments(fabric.Impairments{LossRate: 0.5})
	var tokens []QToken
	for i := 0; i < 40; i++ {
		qt, err := cli.Push(cqd, NewSGA(bytes.Repeat([]byte{1}, 512)))
		if err != nil {
			break
		}
		tokens = append(tokens, qt)
	}
	cli.WaitTimeout = 500 * time.Millisecond
	sawFailure := false
	for _, qt := range tokens {
		comp, err := cli.Wait(qt)
		if err != nil || comp.Err != nil {
			sawFailure = true
			break
		}
	}
	if !sawFailure {
		t.Fatal("50% loss never surfaced as a failed operation")
	}
	// The device recorded the protocol-level diagnosis.
	errs := cli.Catmint.Device().Stats().QPErrors + srv.Catmint.Device().Stats().QPErrors
	rnrs := cli.Catmint.Device().Stats().RNRNaks + srv.Catmint.Device().Stats().RNRNaks
	if errs+rnrs == 0 {
		t.Fatal("no QP errors or NAKs recorded under loss")
	}
	_ = sqd
}

func TestCatfishSurvivesFullDisk(t *testing.T) {
	c := NewCluster(203)
	node, err := c.Spawn(Catfish, WithBlocks(4)) // 4 blocks = 16 KiB namespace
	if err != nil {
		t.Fatal(err)
	}
	qd, err := node.Open("/tiny")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the log until the device is full.
	failed := false
	for i := 0; i < 64; i++ {
		comp, err := node.BlockingPush(qd, NewSGA(make([]byte, 1024)))
		if err != nil {
			t.Fatal(err)
		}
		if comp.Err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("writes never failed on a 16KiB namespace")
	}
	// Reads of earlier records still work.
	comp, err := node.BlockingPop(qd)
	if err != nil || comp.Err != nil {
		t.Fatalf("read after full disk: %v %v", err, comp.Err)
	}
}

func TestRDMARawQPErrorStatus(t *testing.T) {
	// Direct substrate check: a PSN break moves the QP to the error
	// state and later verbs are refused.
	model := c202model()
	sw := fabric.NewSwitch(&model, 204)
	a := rdma.New(&model, sw, fabric.MAC{2, 0, 0, 0, 0, 0xA1})
	b := rdma.New(&model, sw, fabric.MAC{2, 0, 0, 0, 0, 0xB1})
	pdB := b.AllocPD()
	scqB, rcqB := b.CreateCQ(), b.CreateCQ()
	l, err := b.Listen(9, pdB, scqB, rcqB)
	if err != nil {
		t.Fatal(err)
	}
	pdA := a.AllocPD()
	scqA, rcqA := a.CreateCQ(), a.CreateCQ()
	qp := a.Connect(b.MAC(), 9, pdA, scqA, rcqA)
	for a.Poll()+b.Poll() > 0 {
	}
	rqp, ok := l.Accept()
	if !ok {
		t.Fatal("accept failed")
	}
	mrB := pdB.RegisterMemory(make([]byte, 4096))
	for i := 0; i < 4; i++ {
		rqp.PostRecv(uint64(i), rdma.Sge{MR: mrB, Off: i * 1024, Len: 1024})
	}
	mrA := pdA.RegisterMemory(make([]byte, 64))

	// Drop exactly one frame mid-sequence.
	sw.SetImpairments(fabric.Impairments{LossRate: 1.0})
	qp.PostSend(100, rdma.Sge{MR: mrA, Off: 0, Len: 64}) // vanishes
	sw.SetImpairments(fabric.Impairments{})
	qp.PostSend(101, rdma.Sge{MR: mrA, Off: 0, Len: 64}) // PSN gap
	for a.Poll()+b.Poll() > 0 {
	}
	wcs := scqA.Poll(0)
	foundErr := false
	for _, wc := range wcs {
		if wc.Status == rdma.StatusQPError {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatalf("PSN break did not produce a QP error: %+v", wcs)
	}
	if b.Stats().QPErrors == 0 {
		t.Fatal("responder did not record the QP error")
	}
	// The broken QP refuses further work.
	if err := qp.PostSend(102, rdma.Sge{MR: mrA, Off: 0, Len: 64}); err == nil {
		for a.Poll()+b.Poll() > 0 {
		}
		// Either the post is refused or it completes with an error.
		wcs := scqA.Poll(0)
		ok := false
		for _, wc := range wcs {
			if wc.Status != rdma.StatusSuccess {
				ok = true
			}
		}
		if !ok {
			t.Fatal("verbs on an errored QP succeeded")
		}
	}
}

// c202model returns the standard cost model (helper keeps the test body
// tidy).
func c202model() CostModel {
	c := NewCluster(0)
	return c.Model
}
