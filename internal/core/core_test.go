package core_test

import (
	"errors"
	"testing"
	"time"

	demi "demikernel"
	"demikernel/internal/core"
	"demikernel/internal/queue"
)

func newNode(t *testing.T, seed int64) *demi.Node {
	t.Helper()
	return demi.NewCluster(seed).MustSpawn(demi.Catnip, demi.WithHost(1))
}

func TestWaitUnknownToken(t *testing.T) {
	n := newNode(t, 111)
	if _, err := n.Wait(queue.QToken(424242)); !errors.Is(err, queue.ErrUnknownToken) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitTimesOut(t *testing.T) {
	n := newNode(t, 112)
	n.WaitTimeout = 30 * time.Millisecond
	q := n.Queue()
	qt, err := n.Pop(q) // nothing will ever arrive
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := n.Wait(qt); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout far exceeded WaitTimeout")
	}
}

func TestAcceptTimesOut(t *testing.T) {
	n := newNode(t, 113)
	n.WaitTimeout = 30 * time.Millisecond
	qd, _ := n.Socket()
	n.Bind(qd, demi.Addr{Port: 99})
	n.Listen(qd)
	if _, err := n.Accept(qd); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitAnyTimesOut(t *testing.T) {
	n := newNode(t, 114)
	n.WaitTimeout = 30 * time.Millisecond
	q := n.Queue()
	qt, _ := n.Pop(q)
	if _, _, err := n.WaitAny([]queue.QToken{qt}); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndpointOfNonEndpoint(t *testing.T) {
	n := newNode(t, 115)
	q := n.Queue()
	if _, err := n.EndpointOf(q); !errors.Is(err, core.ErrBadQD) {
		t.Fatalf("err = %v", err)
	}
	if _, err := n.EndpointOf(demi.QD(999)); !errors.Is(err, core.ErrBadQD) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateAliasesOpenOnStorage(t *testing.T) {
	c := demi.NewCluster(116)
	n, err := c.Spawn(demi.Catfish, demi.WithBlocks(0))
	if err != nil {
		t.Fatal(err)
	}
	qd, err := n.Create("/made")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.BlockingPush(qd, demi.NewSGA([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	qd2, err := n.Open("/made")
	if err != nil {
		t.Fatal(err)
	}
	comp, err := n.BlockingPop(qd2)
	if err != nil || string(comp.SGA.Bytes()) != "x" {
		t.Fatalf("comp=%v err=%v", comp, err)
	}
}

func TestQConnectChain(t *testing.T) {
	// queue -> filter -> queue via two qconnects: a §4.3 pipeline
	// stitched from forwarding rules.
	n := newNode(t, 117)
	in := n.Queue()
	mid, err := n.Filter(n.Queue(), func(s demi.SGA) bool { return s.Len() >= 2 })
	if err != nil {
		t.Fatal(err)
	}
	out := n.Queue()
	if err := n.QConnect(in, mid); err != nil {
		t.Fatal(err)
	}
	if err := n.QConnect(mid, out); err != nil {
		t.Fatal(err)
	}
	n.BlockingPush(in, demi.NewSGA([]byte("y")))  // filtered out
	n.BlockingPush(in, demi.NewSGA([]byte("ok"))) // passes
	comp, err := n.BlockingPop(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(comp.SGA.Bytes()) != "ok" {
		t.Fatalf("got %q", comp.SGA.Bytes())
	}
}

func TestCloseFailsOutstandingOps(t *testing.T) {
	n := newNode(t, 118)
	q := n.Queue()
	qt, _ := n.Pop(q)
	if err := n.Close(q); err != nil {
		t.Fatal(err)
	}
	comp, err := n.Wait(qt)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(comp.Err, queue.ErrClosed) {
		t.Fatalf("comp.Err = %v", comp.Err)
	}
	// The descriptor is gone.
	if _, err := n.Pop(q); !errors.Is(err, core.ErrBadQD) {
		t.Fatalf("err = %v", err)
	}
}

func TestTryWaitNonBlocking(t *testing.T) {
	n := newNode(t, 119)
	q := n.Queue()
	qt, _ := n.Pop(q)
	if _, ok, err := n.TryWait(qt); ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	n.BlockingPush(q, demi.NewSGA([]byte("now")))
	comp, ok, err := n.TryWait(qt)
	if !ok || err != nil || string(comp.SGA.Bytes()) != "now" {
		t.Fatalf("ok=%v err=%v comp=%v", ok, err, comp)
	}
}

func TestMergeOfComposedQueues(t *testing.T) {
	n := newNode(t, 120)
	a, b := n.Queue(), n.Queue()
	fa, err := n.Filter(a, func(s demi.SGA) bool { return s.Bytes()[0] == 'A' })
	if err != nil {
		t.Fatal(err)
	}
	m, err := n.Merge(fa, b)
	if err != nil {
		t.Fatal(err)
	}
	n.BlockingPush(a, demi.NewSGA([]byte("X-dropped")))
	n.BlockingPush(a, demi.NewSGA([]byte("A-pass")))
	n.BlockingPush(b, demi.NewSGA([]byte("B-direct")))
	n.Poll()
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		comp, err := n.BlockingPop(m)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(comp.SGA.Bytes())] = true
	}
	if !seen["A-pass"] || !seen["B-direct"] {
		t.Fatalf("merged = %v", seen)
	}
}

func TestErrWaitTimeoutSentinel(t *testing.T) {
	// Every deadline error across the system-call surface wraps the one
	// sentinel, so applications can write a single errors.Is check.
	if !errors.Is(core.ErrTimeout, core.ErrWaitTimeout) {
		t.Fatal("ErrTimeout must alias ErrWaitTimeout")
	}
	n := newNode(t, 120)
	n.WaitTimeout = 20 * time.Millisecond
	q := n.Queue()
	qt, err := n.Pop(q) // nothing will ever arrive
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Wait(qt); !errors.Is(err, core.ErrWaitTimeout) {
		t.Fatalf("Wait: %v does not wrap ErrWaitTimeout", err)
	}
	if _, err := n.WaitAll([]queue.QToken{qt}); !errors.Is(err, core.ErrWaitTimeout) {
		t.Fatalf("WaitAll: %v does not wrap ErrWaitTimeout", err)
	}
	// The wrapped form must still carry the operation's name for logs.
	_, err = n.Wait(qt)
	if err == nil || err.Error() == core.ErrWaitTimeout.Error() {
		t.Fatalf("Wait error %q should wrap the sentinel with context", err)
	}
}

func TestConnectTimeoutWrapsSentinel(t *testing.T) {
	// Connecting to a host that never answers must fail within the
	// configured deadline with the typed sentinel — not hang. (catnap's
	// kernel stack keeps retrying SYNs below the libOS, so the generic
	// wait deadline is the backstop there.)
	c := demi.NewCluster(121)
	n := c.MustSpawn(demi.Catnap, demi.WithHost(1))
	n.WaitTimeout = 30 * time.Millisecond
	qd, err := n.Socket()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = n.Connect(qd, demi.Addr{IP: c.MustSpawn(demi.Catnap, demi.WithHost(9)).IP, Port: 1})
	if !errors.Is(err, core.ErrWaitTimeout) {
		t.Fatalf("connect to silent host: %v does not wrap ErrWaitTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("connect timeout took far longer than the configured deadline")
	}
}
