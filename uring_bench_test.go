package demikernel

// BenchmarkURing_* measures the syscall-free ring data path against the
// same manually-pumped catnip echo rig BenchmarkHotPath_EchoRTT uses
// for the per-op token path. The client posts batches of push+pop SQEs
// to its submission ring and harvests tagged CQEs; the server echoes
// through its own ring pair. No calls into the libOS happen per
// operation — Poll drains the SQs — so ns/op falls as the batch
// amortizes the transport sweeps, and allocs/op is exactly zero.
// `make bench` persists the results as BENCH_uring.json.

import (
	"fmt"
	"testing"

	"demikernel/internal/queue"
	"demikernel/internal/uring"
)

// ringHeldCap bounds the server-side FIFO of popped payloads awaiting
// their echo-push completion; 256 covers the largest benchmark batch
// with room for pipelining.
const ringHeldCap = 256

// ringEchoRig is the manually-pumped ring-path echo pair: one ring pair
// per side, descriptor QDs from hotPathPair, and reusable scratch for
// every submit/harvest so the steady state allocates nothing.
type ringEchoRig struct {
	cli, srv *LibOS
	cqd, sqd QD
	cp, sp   *uring.Pair

	csq  []uring.SQE // client submission staging
	ccq  []uring.CQE // client harvest scratch
	ssq  []uring.SQE // server submission staging
	scq  []uring.CQE // server harvest scratch
	held [ringHeldCap]SGA
	hh   int // held head
	ht   int // held tail

	cleanup func()
}

func newRingEchoRig(tb testing.TB) *ringEchoRig {
	tb.Helper()
	cli, srv, cqd, sqd, cleanup := hotPathPair(tb)
	r := &ringEchoRig{
		cli: cli, srv: srv, cqd: cqd, sqd: sqd,
		cp:      cli.AttachRing(ringHeldCap),
		sp:      srv.AttachRing(ringHeldCap),
		cleanup: cleanup,
	}
	r.csq = make([]uring.SQE, 0, 2*ringHeldCap)
	r.ccq = make([]uring.CQE, ringHeldCap)
	r.ssq = make([]uring.SQE, 0, 2*ringHeldCap)
	r.scq = make([]uring.CQE, ringHeldCap)
	// Arm a window of server pops; each request re-arms one, so the
	// window is the server's pipeline depth. One pop per request would
	// serialize the whole batch to one request per poll.
	for i := 0; i < 64; i++ {
		r.ssq = append(r.ssq, uring.SQE{Op: queue.OpPop, QD: int32(sqd), Tag: 0})
	}
	r.flushServer(tb)
	return r
}

func (r *ringEchoRig) flushServer(tb testing.TB) {
	tb.Helper()
	for len(r.ssq) > 0 {
		n, err := r.srv.SubmitBatch(r.sp, r.ssq)
		if err != nil {
			tb.Fatal(err)
		}
		r.ssq = r.ssq[:copy(r.ssq, r.ssq[n:])]
		if n == 0 {
			r.srv.Poll()
		}
	}
}

// serviceServer plays the echo server: harvest the server CQ, push each
// popped payload back (tag 1) with a re-armed pop (tag 0), and free
// payloads whose echo push has completed.
func (r *ringEchoRig) serviceServer(tb testing.TB) {
	tb.Helper()
	n := r.srv.HarvestCQ(r.sp, r.scq)
	for i := 0; i < n; i++ {
		c := &r.scq[i]
		if c.Err != nil {
			tb.Fatal(c.Err)
		}
		if c.Tag == 1 { // echo delivered; FIFO head is its payload
			r.held[r.hh%ringHeldCap].Free()
			r.held[r.hh%ringHeldCap] = SGA{}
			r.hh++
			*c = uring.CQE{}
			continue
		}
		r.held[r.ht%ringHeldCap] = c.SGA
		r.ht++
		r.ssq = append(r.ssq,
			uring.SQE{Op: queue.OpPush, QD: int32(r.sqd), Tag: 1, SGA: c.SGA, Cost: c.Cost},
			uring.SQE{Op: queue.OpPop, QD: int32(r.sqd), Tag: 0})
		*c = uring.CQE{}
	}
	r.flushServer(tb)
}

// roundTrips drives batch pipelined echo RTTs: 2*batch SQEs posted to
// the client ring up front, then both nodes polled and both rings
// harvested until every completion lands. The held-payload FIFO frees
// each pooled clone only after its echo push completes.
func (r *ringEchoRig) roundTrips(tb testing.TB, payload SGA, batch int) {
	tb.Helper()
	sq := r.csq[:0]
	for i := 0; i < batch; i++ {
		sq = append(sq,
			uring.SQE{Op: queue.OpPush, QD: int32(r.cqd), Tag: uint64(i)<<1 | 1, SGA: payload},
			uring.SQE{Op: queue.OpPop, QD: int32(r.cqd), Tag: uint64(i) << 1})
	}
	want := len(sq)
	got := 0
	for got < want || len(sq) > 0 {
		if len(sq) > 0 {
			n, err := r.cli.SubmitBatch(r.cp, sq)
			if err != nil {
				tb.Fatal(err)
			}
			sq = sq[n:]
		}
		r.cli.Poll() // drain client SQ, TX the requests
		r.srv.Poll() // RX requests; pop CQEs land on the server ring
		r.serviceServer(tb)
		r.srv.Poll() // drain server SQ, TX the echoes
		r.cli.Poll() // RX echoes; pop CQEs land on the client ring
		n := r.cli.HarvestCQ(r.cp, r.ccq)
		for i := 0; i < n; i++ {
			c := &r.ccq[i]
			if c.Err != nil {
				tb.Fatal(c.Err)
			}
			if c.Kind == queue.OpPop {
				c.SGA.Free()
			}
			*c = uring.CQE{}
			got++
		}
	}
	// Drain the server's trailing push completions so held payloads
	// recycle before the next call.
	for r.hh != r.ht {
		r.cli.Poll()
		r.srv.Poll()
		r.serviceServer(tb)
	}
	r.csq = r.csq[:0]
}

// BenchmarkURing_EchoRTT is the ring-path counterpart of
// BenchmarkHotPath_EchoRTT/64B: ns/op is per round trip, with batch
// round trips in flight on the rings at once. batch=1 isolates the
// ring-vs-token submission cost; batch=8/32 show the amortization the
// shared-memory rings exist for.
func BenchmarkURing_EchoRTT(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("64B/batch%d", batch), func(b *testing.B) {
			r := newRingEchoRig(b)
			defer r.cleanup()
			payload := NewSGA(make([]byte, 64))
			r.roundTrips(b, payload, batch) // warm pools and scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				r.roundTrips(b, payload, batch)
			}
		})
	}
}

// BenchmarkURing_SubmitHarvest isolates the ring crossing itself —
// SubmitN, drain, slab completion, Harvest — over an in-memory queue
// with no netstack underneath: the cost of the "syscall" that is no
// longer a syscall.
// The 1 alloc/op here is MemQueue's element bookkeeping, not the ring:
// the network ring path is alloc-free (see TestHotPathAllocsRingEchoRTT).
func BenchmarkURing_SubmitHarvest(b *testing.B) {
	c := NewCluster(1)
	n := c.MustSpawn(Catnip, WithHost(1))
	qd := n.Queue()
	p := n.AttachRing(64)
	cqes := make([]uring.CQE, 64)
	payload := NewSGA(make([]byte, 64))
	sqes := []uring.SQE{
		{Op: queue.OpPush, QD: int32(qd), Tag: 1, SGA: payload},
		{Op: queue.OpPop, QD: int32(qd), Tag: 2},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nn, err := n.SubmitBatch(p, sqes); err != nil || nn != 2 {
			b.Fatalf("submit: n=%d err=%v", nn, err)
		}
		got := 0
		for got < 2 {
			n.Poll()
			h := n.HarvestCQ(p, cqes)
			for j := 0; j < h; j++ {
				if cqes[j].Err != nil {
					b.Fatal(cqes[j].Err)
				}
				if cqes[j].Kind == queue.OpPop {
					cqes[j].SGA.Free()
				}
				cqes[j] = uring.CQE{}
			}
			got += h
		}
	}
}
