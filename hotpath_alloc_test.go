package demikernel

// Alloc-count guards for the pooled data path. These are hard
// regression fences: the thresholds have headroom over the measured
// steady state (echo RTT measures ~14 allocs/op after pooling, down
// from ~47 before), so incidental churn does not flake them, but any
// change that reintroduces per-packet or per-poll allocation trips
// them immediately.

import (
	"testing"

	"demikernel/internal/sched"
)

// TestHotPathAllocsEchoRTT bounds allocations for one full echo round
// trip (client push → server pop → echo push → client pop) on the
// manually-pumped rig. The remaining allocations are token state in the
// completer and SGA headers; payload bytes, TX frames, and RX staging
// all come from pools.
func TestHotPathAllocsEchoRTT(t *testing.T) {
	cli, srv, cqd, sqd, cleanup := hotPathPair(t)
	defer cleanup()
	payload := NewSGA(make([]byte, 64))
	echoRTT(t, cli, srv, cqd, sqd, payload) // warm pools and scratch

	const limit = 24.0
	allocs := testing.AllocsPerRun(100, func() {
		echoRTT(t, cli, srv, cqd, sqd, payload)
	})
	if allocs > limit {
		t.Fatalf("echo RTT allocates %.1f objects/op, want <= %.0f", allocs, limit)
	}
}

// TestHotPathAllocsIdlePoll requires a steady-state LibOS.Poll over
// connected-but-idle descriptors to be allocation-free: the poll list
// is generation-cached and every per-poll scratch buffer is reused.
func TestHotPathAllocsIdlePoll(t *testing.T) {
	cli, srv, _, _, cleanup := hotPathPair(t)
	defer cleanup()
	cli.Poll()
	srv.Poll()

	for name, l := range map[string]*LibOS{"client": cli, "server": srv} {
		if allocs := testing.AllocsPerRun(1000, func() { l.Poll() }); allocs != 0 {
			t.Errorf("%s idle Poll allocates %.1f objects/op, want 0", name, allocs)
		}
	}
}

// TestHotPathAllocsEventLoopTick requires an idle EventLoop tick to be
// allocation-free: ready-list dispatch does no per-token probing and
// the acceptor snapshot is cached.
func TestHotPathAllocsEventLoopTick(t *testing.T) {
	cli, _, _, _, cleanup := hotPathPair(t)
	defer cleanup()
	el := sched.New(cli)
	el.Tick()

	if allocs := testing.AllocsPerRun(1000, func() { el.Tick() }); allocs != 0 {
		t.Errorf("idle EventLoop.Tick allocates %.1f objects/op, want 0", allocs)
	}
}
