package rdma

import (
	"encoding/binary"
	"hash/crc32"

	"demikernel/internal/fabric"
	"demikernel/internal/simclock"
)

// etherTypeRDMA is the custom EtherType of the simulated RoCE-like
// transport.
const etherTypeRDMA = 0x88FF

// Wire opcodes.
const (
	opConnReq byte = iota + 1
	opConnResp
	opSend
	opWrite
	opReadReq
	opReadResp
	opAck
	opNak
)

// NAK reason codes on the wire.
const (
	nakRNR byte = iota + 1
	nakLen
	nakAccess
	nakQPErr
)

// send frames a transport message to mac. The header is:
// opcode(1) dstQPN(4), followed by an opcode-specific payload and a
// 4-byte invariant CRC trailer (RoCE's ICRC): the receiver discards any
// frame whose trailer does not match, so wire corruption surfaces as a
// PSN gap instead of silently corrupted application data.
func (d *Device) send(mac fabric.MAC, opcode byte, dstQPN uint32, payload []byte, cost simclock.Lat) {
	frame := make([]byte, 0, 14+5+len(payload)+4)
	frame = append(frame, mac[:]...)
	frame = append(frame, d.mac[:]...)
	frame = binary.BigEndian.AppendUint16(frame, etherTypeRDMA)
	frame = append(frame, opcode)
	frame = binary.BigEndian.AppendUint32(frame, dstQPN)
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame))
	d.port.Send(fabric.Frame{Data: frame, Cost: cost + d.model.NICProcessNS})
}

// Poll processes incoming transport frames and returns how many it
// handled. Applications (or the libOS) pump it alongside their CQ polls.
func (d *Device) Poll() int {
	n := 0
	for {
		f, ok := d.port.Poll()
		if !ok {
			return n
		}
		d.handleFrame(f)
		f.Release() // no-op for rdma's heap frames; keeps the ownership contract uniform
		n++
	}
}

func (d *Device) handleFrame(f fabric.Frame) {
	data := f.Data
	if len(data) < 19+4 {
		return
	}
	if binary.BigEndian.Uint16(data[12:14]) != etherTypeRDMA {
		return
	}
	// ICRC check: corrupted frames are dropped before any transport
	// processing. The resulting PSN gap errors the QP on the next valid
	// frame — exactly how a RoCE NIC reacts to a lossy fabric.
	crcOff := len(data) - 4
	if crc32.ChecksumIEEE(data[:crcOff]) != binary.BigEndian.Uint32(data[crcOff:]) {
		d.mu.Lock()
		d.stats.IcrcDrops++
		d.mu.Unlock()
		return
	}
	var srcMAC fabric.MAC
	copy(srcMAC[:], data[6:12])
	opcode := data[14]
	dstQPN := binary.BigEndian.Uint32(data[15:19])
	body := data[19:crcOff]
	cost := f.Cost + d.model.NICProcessNS

	d.mu.Lock()
	defer d.mu.Unlock()
	switch opcode {
	case opConnReq:
		d.handleConnReqLocked(srcMAC, body)
	case opConnResp:
		d.handleConnRespLocked(dstQPN, body)
	case opSend:
		d.handleSendLocked(srcMAC, dstQPN, body, cost)
	case opWrite:
		d.handleWriteLocked(srcMAC, dstQPN, body, cost)
	case opReadReq:
		d.handleReadReqLocked(srcMAC, dstQPN, body)
	case opReadResp:
		d.handleReadRespLocked(dstQPN, body, cost)
	case opAck:
		d.handleAckLocked(dstQPN, body, cost)
	case opNak:
		d.handleNakLocked(dstQPN, body, cost)
	}
}

func (d *Device) handleConnReqLocked(srcMAC fabric.MAC, body []byte) {
	if len(body) < 6 {
		return
	}
	port := binary.BigEndian.Uint16(body[0:2])
	clientQPN := binary.BigEndian.Uint32(body[2:6])
	l, ok := d.listeners[port]
	if !ok {
		return
	}
	qp := d.newQPLocked(l.pd, l.sendCQ, l.recvCQ)
	qp.remoteMAC = srcMAC
	qp.remoteQPN = clientQPN
	qp.state = qpReady
	l.backlog = append(l.backlog, qp)

	resp := binary.BigEndian.AppendUint32(nil, qp.num)
	// Unlock-free send: d.send does not take d.mu.
	d.send(srcMAC, opConnResp, clientQPN, resp, 0)
}

func (d *Device) handleConnRespLocked(dstQPN uint32, body []byte) {
	if len(body) < 4 {
		return
	}
	qp, ok := d.qps[dstQPN]
	if !ok || qp.state != qpConnecting {
		return
	}
	qp.remoteQPN = binary.BigEndian.Uint32(body[0:4])
	qp.state = qpReady
}

// checkPSNLocked enforces the lossless in-order assumption. On violation
// the QP enters the error state, as a RoCE RC QP would after exhausting
// retries.
func (d *Device) checkPSNLocked(qp *QP, srcMAC fabric.MAC, psn uint32) bool {
	if psn != qp.recvPSN {
		d.errorQPLocked(qp)
		d.send(srcMAC, opNak, qp.remoteQPN, nakPayload(psn, nakQPErr), 0)
		return false
	}
	qp.recvPSN++
	return true
}

func nakPayload(psn uint32, reason byte) []byte {
	p := binary.BigEndian.AppendUint32(nil, psn)
	return append(p, reason)
}

func (d *Device) handleSendLocked(srcMAC fabric.MAC, dstQPN uint32, body []byte, cost simclock.Lat) {
	if len(body) < 4 {
		return
	}
	psn := binary.BigEndian.Uint32(body[0:4])
	qp, ok := d.qps[dstQPN]
	if !ok || qp.state != qpReady {
		if ok && qp.state == qpError {
			// Tell the sender immediately instead of letting its
			// inflight sends age out: its QP errors and its libOS can
			// start reconnecting.
			d.send(srcMAC, opNak, qp.remoteQPN, nakPayload(psn, nakQPErr), 0)
		}
		return
	}
	data := body[4:]
	if !d.checkPSNLocked(qp, srcMAC, psn) {
		return
	}
	if len(qp.recvQ) == 0 {
		// The paper's failure mode: too few posted buffers.
		d.stats.RNRNaks++
		d.send(srcMAC, opNak, qp.remoteQPN, nakPayload(psn, nakRNR), 0)
		return
	}
	wr := qp.recvQ[0]
	qp.recvQ = qp.recvQ[1:]
	if wr.sge.Len < len(data) {
		d.stats.LenNaks++
		qp.recvCQ.pushLocked(WC{WRID: wr.wrID, QPNum: qp.num, Op: OpRecv, Status: StatusLenErr})
		d.send(srcMAC, opNak, qp.remoteQPN, nakPayload(psn, nakLen), 0)
		return
	}
	copy(wr.sge.MR.buf[wr.sge.Off:], data)
	d.stats.Recvs++
	qp.recvCQ.pushLocked(WC{
		WRID:   wr.wrID,
		QPNum:  qp.num,
		Op:     OpRecv,
		Status: StatusSuccess,
		Len:    len(data),
		Cost:   cost + d.model.RDMAOpNS + d.model.DMACost(len(data)),
	})
	d.send(srcMAC, opAck, qp.remoteQPN, binary.BigEndian.AppendUint32(nil, psn), 0)
}

func (d *Device) handleWriteLocked(srcMAC fabric.MAC, dstQPN uint32, body []byte, cost simclock.Lat) {
	if len(body) < 16 {
		return
	}
	qp, ok := d.qps[dstQPN]
	if !ok || qp.state != qpReady {
		return
	}
	psn := binary.BigEndian.Uint32(body[0:4])
	rkey := binary.BigEndian.Uint32(body[4:8])
	roff := int(binary.BigEndian.Uint64(body[8:16]))
	data := body[16:]
	if !d.checkPSNLocked(qp, srcMAC, psn) {
		return
	}
	mr, ok := d.mrs[rkey]
	if !ok || !mr.valid || roff < 0 || roff+len(data) > len(mr.buf) {
		d.stats.AccessNaks++
		d.send(srcMAC, opNak, qp.remoteQPN, nakPayload(psn, nakAccess), 0)
		return
	}
	// One-sided: DMA directly into application memory, no completion on
	// this side.
	copy(mr.buf[roff:], data)
	d.send(srcMAC, opAck, qp.remoteQPN, binary.BigEndian.AppendUint32(nil, psn), 0)
	_ = cost
}

func (d *Device) handleReadReqLocked(srcMAC fabric.MAC, dstQPN uint32, body []byte) {
	if len(body) < 20 {
		return
	}
	qp, ok := d.qps[dstQPN]
	if !ok || qp.state != qpReady {
		return
	}
	psn := binary.BigEndian.Uint32(body[0:4])
	rkey := binary.BigEndian.Uint32(body[4:8])
	roff := int(binary.BigEndian.Uint64(body[8:16]))
	rlen := int(binary.BigEndian.Uint32(body[16:20]))
	if !d.checkPSNLocked(qp, srcMAC, psn) {
		return
	}
	mr, ok := d.mrs[rkey]
	if !ok || !mr.valid || roff < 0 || rlen < 0 || roff+rlen > len(mr.buf) {
		d.stats.AccessNaks++
		d.send(srcMAC, opNak, qp.remoteQPN, nakPayload(psn, nakAccess), 0)
		return
	}
	resp := binary.BigEndian.AppendUint32(nil, psn)
	resp = append(resp, mr.buf[roff:roff+rlen]...)
	d.send(srcMAC, opReadResp, qp.remoteQPN, resp, d.model.RDMAOpNS+d.model.DMACost(rlen))
}

func (d *Device) handleReadRespLocked(dstQPN uint32, body []byte, cost simclock.Lat) {
	if len(body) < 4 {
		return
	}
	qp, ok := d.qps[dstQPN]
	if !ok {
		return
	}
	psn := binary.BigEndian.Uint32(body[0:4])
	pend, ok := qp.inflight[psn]
	if !ok || pend.op != OpRead {
		return
	}
	delete(qp.inflight, psn)
	data := body[4:]
	n := min(len(data), pend.sge.Len)
	copy(pend.sge.MR.buf[pend.sge.Off:], data[:n])
	qp.sendCQ.pushLocked(WC{
		WRID:   pend.wrID,
		QPNum:  qp.num,
		Op:     OpRead,
		Status: StatusSuccess,
		Len:    n,
		Cost:   cost + d.model.RDMAOpNS + d.model.DMACost(n),
	})
}

func (d *Device) handleAckLocked(dstQPN uint32, body []byte, cost simclock.Lat) {
	if len(body) < 4 {
		return
	}
	qp, ok := d.qps[dstQPN]
	if !ok {
		return
	}
	psn := binary.BigEndian.Uint32(body[0:4])
	pend, ok := qp.inflight[psn]
	if !ok {
		return
	}
	delete(qp.inflight, psn)
	qp.sendCQ.pushLocked(WC{
		WRID:   pend.wrID,
		QPNum:  qp.num,
		Op:     pend.op,
		Status: StatusSuccess,
		Len:    pend.n,
		Cost:   cost,
	})
}

func (d *Device) handleNakLocked(dstQPN uint32, body []byte, cost simclock.Lat) {
	if len(body) < 5 {
		return
	}
	qp, ok := d.qps[dstQPN]
	if !ok {
		return
	}
	psn := binary.BigEndian.Uint32(body[0:4])
	reason := body[4]
	pend, ok := qp.inflight[psn]
	if !ok {
		return
	}
	delete(qp.inflight, psn)
	status := StatusQPError
	switch reason {
	case nakRNR:
		status = StatusRNR
	case nakLen:
		status = StatusLenErr
	case nakAccess:
		status = StatusRemoteAccess
	case nakQPErr:
		// The peer declared the connection broken: error this side too
		// and flush everything else still inflight.
		d.errorQPLocked(qp)
	}
	qp.sendCQ.pushLocked(WC{
		WRID:   pend.wrID,
		QPNum:  qp.num,
		Op:     pend.op,
		Status: status,
		Len:    pend.n,
		Cost:   cost,
	})
}
