package netstack

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"demikernel/internal/fabric"
	"demikernel/internal/nic"
	"demikernel/internal/simclock"
)

var (
	macA = fabric.MAC{0x02, 0, 0, 0, 0, 0xA}
	macB = fabric.MAC{0x02, 0, 0, 0, 0, 0xB}
	ipA  = IP(10, 0, 0, 1)
	ipB  = IP(10, 0, 0, 2)
)

type world struct {
	sw         *fabric.Switch
	a, b       *Stack
	devA, devB *nic.Device
}

func newWorld(t *testing.T, cfgA, cfgB Config) *world {
	t.Helper()
	model := simclock.Datacenter2019()
	sw := fabric.NewSwitch(&model, 99)
	devA := nic.New(&model, sw, nic.Config{MAC: macA})
	devB := nic.New(&model, sw, nic.Config{MAC: macB})
	cfgA.IP = ipA
	cfgB.IP = ipB
	return &world{
		sw:   sw,
		a:    New(&model, devA, cfgA),
		b:    New(&model, devB, cfgB),
		devA: devA,
		devB: devB,
	}
}

// pump polls both stacks until neither makes progress.
func (w *world) pump() {
	for {
		n := w.a.Poll() + w.b.Poll()
		if n == 0 {
			w.sw.Flush()
			if w.a.Poll()+w.b.Poll() == 0 {
				return
			}
		}
	}
}

// pumpUntil pumps with timer advancement until cond holds or the deadline
// passes.
func (w *world) pumpUntil(t *testing.T, cond func() bool, deadline time.Duration) {
	t.Helper()
	start := time.Now()
	for time.Since(start) < deadline {
		w.pump()
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", deadline)
}

func dialPair(t *testing.T, w *world, port uint16) (client, server *TCPConn) {
	t.Helper()
	l, err := w.b.ListenTCP(port)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.a.DialTCP(ipB, port)
	if err != nil {
		t.Fatal(err)
	}
	w.pumpUntil(t, func() bool {
		if server == nil {
			server, _ = l.Accept()
		}
		return server != nil && c.Established()
	}, 2*time.Second)
	return c, server
}

func TestUDPBasic(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	ua, err := w.a.OpenUDP(5000)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := w.b.OpenUDP(6000)
	if err != nil {
		t.Fatal(err)
	}
	ua.SendTo(ipB, 6000, []byte("ping"), 0)
	w.pump()
	d, ok := ub.Recv()
	if !ok {
		t.Fatal("datagram not delivered")
	}
	if string(d.Payload) != "ping" || d.SrcIP != ipA || d.SrcPort != 5000 {
		t.Fatalf("got %+v", d)
	}
	if d.Cost == 0 {
		t.Fatal("no virtual cost accumulated")
	}
	// Reply path uses the learned ARP entry.
	ub.SendTo(d.SrcIP, d.SrcPort, []byte("pong"), 0)
	w.pump()
	r, ok := ua.Recv()
	if !ok || string(r.Payload) != "pong" {
		t.Fatalf("reply missing: %v %q", ok, r.Payload)
	}
	if w.a.Stats().ARPRequests != 1 {
		t.Fatalf("ARPRequests = %d, want 1 (resolution once)", w.a.Stats().ARPRequests)
	}
}

func TestUDPPortConflict(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	if _, err := w.a.OpenUDP(7000); err != nil {
		t.Fatal(err)
	}
	if _, err := w.a.OpenUDP(7000); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestUDPNoListenerDropped(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	ua, _ := w.a.OpenUDP(5000)
	ua.SendTo(ipB, 9999, []byte("void"), 0)
	w.pump()
	if w.b.Stats().NoListener != 1 {
		t.Fatalf("NoListener = %d, want 1", w.b.Stats().NoListener)
	}
}

func TestTCPHandshake(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, srv := dialPair(t, w, 8000)
	if !c.Established() || !srv.Established() {
		t.Fatal("handshake incomplete")
	}
	if srv.RemoteIP() != ipA || c.RemoteIP() != ipB {
		t.Fatal("peer addresses wrong")
	}
}

func TestTCPDataTransfer(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, srv := dialPair(t, w, 8000)
	msg := []byte("hello over user-level tcp")
	if _, err := c.Send(msg, 0); err != nil {
		t.Fatal(err)
	}
	var got []byte
	w.pumpUntil(t, func() bool {
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 2*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestTCPLargeTransferSegmentation(t *testing.T) {
	w := newWorld(t, Config{MSS: 500}, Config{MSS: 500})
	c, srv := dialPair(t, w, 8000)
	msg := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(msg)
	var got []byte
	sent := 0
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			n, err := c.Send(msg[sent:], 0)
			if err != nil {
				t.Fatal(err)
			}
			sent += n
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 5*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted across segmentation")
	}
	if w.a.Stats().TCPSegsSent < 100 {
		t.Fatalf("expected >=100 segments for 50k/500B, got %d", w.a.Stats().TCPSegsSent)
	}
}

func TestTCPBidirectional(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, srv := dialPair(t, w, 8000)
	c.Send([]byte("c2s"), 0)
	srv.Send([]byte("s2c"), 0)
	var fromC, fromS []byte
	w.pumpUntil(t, func() bool {
		b1, _, _ := srv.Recv(0)
		fromC = append(fromC, b1...)
		b2, _, _ := c.Recv(0)
		fromS = append(fromS, b2...)
		return string(fromC) == "c2s" && string(fromS) == "s2c"
	}, 2*time.Second)
}

func TestTCPRetransmitUnderLoss(t *testing.T) {
	w := newWorld(t, Config{MSS: 512, RTO: 5 * time.Millisecond}, Config{MSS: 512, RTO: 5 * time.Millisecond})
	c, srv := dialPair(t, w, 8000)
	// Now inject 20% loss and push data through.
	w.sw.SetImpairments(fabric.Impairments{LossRate: 0.2})
	msg := make([]byte, 20_000)
	rand.New(rand.NewSource(2)).Read(msg)
	var got []byte
	sent := 0
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			n, _ := c.Send(msg[sent:], 0)
			sent += n
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 10*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted under loss")
	}
	if w.a.Stats().Retransmits == 0 && w.a.Stats().FastRetransmits == 0 {
		t.Fatal("no retransmissions recorded under 20% loss")
	}
}

func TestTCPReordering(t *testing.T) {
	w := newWorld(t, Config{MSS: 256, RTO: 10 * time.Millisecond}, Config{MSS: 256, RTO: 10 * time.Millisecond})
	c, srv := dialPair(t, w, 8000)
	w.sw.SetImpairments(fabric.Impairments{ReorderRate: 0.3})
	msg := make([]byte, 10_000)
	rand.New(rand.NewSource(3)).Read(msg)
	var got []byte
	sent := 0
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			n, _ := c.Send(msg[sent:], 0)
			sent += n
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 10*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted under reordering")
	}
}

func TestTCPDuplication(t *testing.T) {
	w := newWorld(t, Config{MSS: 256}, Config{MSS: 256})
	c, srv := dialPair(t, w, 8000)
	w.sw.SetImpairments(fabric.Impairments{DupRate: 0.5})
	msg := make([]byte, 8_000)
	rand.New(rand.NewSource(4)).Read(msg)
	var got []byte
	sent := 0
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			n, _ := c.Send(msg[sent:], 0)
			sent += n
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) >= len(msg)
	}, 10*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatalf("duplication corrupted stream: got %d bytes want %d", len(got), len(msg))
	}
}

func TestTCPCloseBothSides(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, srv := dialPair(t, w, 8000)
	c.Send([]byte("bye"), 0)
	c.Close()
	var got []byte
	w.pumpUntil(t, func() bool {
		b, _, err := srv.Recv(0)
		got = append(got, b...)
		return err == io.EOF
	}, 2*time.Second)
	if string(got) != "bye" {
		t.Fatalf("data before FIN lost: %q", got)
	}
	srv.Close()
	w.pumpUntil(t, func() bool {
		return c.Closed() && srv.Closed()
	}, 2*time.Second)
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, _ := dialPair(t, w, 8000)
	c.Close()
	if _, err := c.Send([]byte("x"), 0); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}

func TestTCPFlowControlZeroWindow(t *testing.T) {
	// Tiny receive window; receiver does not drain. Sender must stall
	// rather than overrun, then complete once the app drains.
	w := newWorld(t, Config{MSS: 512, RTO: 5 * time.Millisecond},
		Config{MSS: 512, RxWindow: 1024, RTO: 5 * time.Millisecond})
	c, srv := dialPair(t, w, 8000)
	msg := make([]byte, 8_000)
	rand.New(rand.NewSource(5)).Read(msg)
	sent := 0
	// Fill without draining: the transfer must stall around the window.
	for i := 0; i < 200; i++ {
		if sent < len(msg) {
			n, _ := c.Send(msg[sent:], 0)
			sent += n
		}
		w.pump()
		time.Sleep(100 * time.Microsecond)
	}
	var got []byte
	w.pumpUntil(t, func() bool {
		if sent < len(msg) {
			n, _ := c.Send(msg[sent:], 0)
			sent += n
		}
		b, _, err := srv.Recv(0)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b...)
		return len(got) == len(msg)
	}, 10*time.Second)
	if !bytes.Equal(got, msg) {
		t.Fatal("flow-controlled stream corrupted")
	}
}

func TestTCPListenerPortConflict(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	if _, err := w.a.ListenTCP(80); err != nil {
		t.Fatal(err)
	}
	if _, err := w.a.ListenTCP(80); err == nil {
		t.Fatal("duplicate listener accepted")
	}
}

func TestTCPConnectNoListener(t *testing.T) {
	w := newWorld(t, Config{RTO: 5 * time.Millisecond}, Config{})
	c, err := w.a.DialTCP(ipB, 4242)
	if err != nil {
		t.Fatal(err)
	}
	// The SYN goes nowhere useful; the connection must not establish.
	for i := 0; i < 20; i++ {
		w.pump()
		time.Sleep(time.Millisecond)
	}
	if c.Established() {
		t.Fatal("established without a listener")
	}
	if w.b.Stats().NoListener == 0 {
		t.Fatal("server stack did not record the orphan SYN")
	}
}

func TestTCPMultipleConnections(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	l, err := w.b.ListenTCP(8000)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	clients := make([]*TCPConn, n)
	for i := range clients {
		c, err := w.a.DialTCP(ipB, 8000)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	var servers []*TCPConn
	w.pumpUntil(t, func() bool {
		for {
			s, ok := l.Accept()
			if !ok {
				break
			}
			servers = append(servers, s)
		}
		return len(servers) == n
	}, 2*time.Second)
	// Each client sends its index; each server echoes it back.
	for i, c := range clients {
		c.Send([]byte{byte(i)}, 0)
	}
	echoed := 0
	w.pumpUntil(t, func() bool {
		for _, s := range servers {
			if b, _, _ := s.Recv(0); len(b) > 0 {
				s.Send(b, 0)
			}
		}
		for _, c := range clients {
			if b, _, _ := c.Recv(0); len(b) > 0 {
				echoed += len(b)
			}
		}
		return echoed == n
	}, 2*time.Second)
}

func TestTCPRecvMaxRespected(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, srv := dialPair(t, w, 8000)
	c.Send([]byte("0123456789"), 0)
	var first []byte
	w.pumpUntil(t, func() bool {
		b, _, _ := srv.Recv(4)
		first = append(first, b...)
		return len(first) > 0
	}, 2*time.Second)
	if len(first) > 4 {
		t.Fatalf("Recv(4) returned %d bytes", len(first))
	}
}

func TestCostAccumulatesOverTCP(t *testing.T) {
	w := newWorld(t, Config{}, Config{})
	c, srv := dialPair(t, w, 8000)
	c.Send([]byte("costed"), 12345)
	var cost simclock.Lat
	w.pumpUntil(t, func() bool {
		b, rc, _ := srv.Recv(0)
		if len(b) > 0 {
			cost = rc
			return true
		}
		return false
	}, 2*time.Second)
	if cost <= 12345 {
		t.Fatalf("cost = %v, want > base 12345 (stack+wire+nic)", cost)
	}
}

func TestChecksumRejectsCorruption(t *testing.T) {
	seg := tcpSegment{srcPort: 1, dstPort: 2, seq: 3, ack: 4, flags: flagACK, window: 100, payload: []byte("data")}
	b := seg.marshal(nil, ipA, ipB)
	if _, ok := parseTCP(b, ipA, ipB); !ok {
		t.Fatal("valid segment rejected")
	}
	b[len(b)-1] ^= 0xFF
	if _, ok := parseTCP(b, ipA, ipB); ok {
		t.Fatal("corrupt segment accepted")
	}
}

func TestIPv4HeaderRoundtrip(t *testing.T) {
	h := ipv4Header{totalLen: 40, id: 7, ttl: 64, proto: protoTCP, src: ipA, dst: ipB}
	b := h.marshal(nil)
	b = append(b, make([]byte, 20)...)
	got, body, ok := parseIPv4(b)
	if !ok {
		t.Fatal("rejected valid header")
	}
	if got.src != ipA || got.dst != ipB || got.proto != protoTCP || len(body) != 20 {
		t.Fatalf("parsed %+v", got)
	}
	b[9] ^= 0x40 // corrupt protocol field
	if _, _, ok := parseIPv4(b); ok {
		t.Fatal("accepted corrupt IPv4 header")
	}
}

func TestARPPacketRoundtrip(t *testing.T) {
	p := arpPacket{op: arpOpRequest, senderHW: macA, senderIP: ipA, targetIP: ipB}
	b := p.marshal(nil)
	got, ok := parseARP(b)
	if !ok || got != p {
		t.Fatalf("roundtrip: ok=%v got=%+v", ok, got)
	}
}

func TestIPv4String(t *testing.T) {
	if got := IP(192, 168, 0, 1).String(); got != "192.168.0.1" {
		t.Fatalf("String = %q", got)
	}
}

func TestRSTOnOrphanSegment(t *testing.T) {
	w := newWorld(t, Config{RTO: 5 * time.Millisecond}, Config{})
	c, err := w.a.DialTCP(ipB, 5555) // nobody listening on B
	if err != nil {
		t.Fatal(err)
	}
	w.pumpUntil(t, func() bool { return c.Err() != nil }, 2*time.Second)
	if c.Established() {
		t.Fatal("reset connection claims established")
	}
	if w.b.Stats().RSTsSent == 0 {
		t.Fatal("no RST emitted for orphan SYN")
	}
	if w.a.Stats().RSTsRcvd == 0 {
		t.Fatal("client never counted the RST")
	}
	// The descriptor fails fast on use.
	if _, err := c.Send([]byte("x"), 0); err == nil {
		t.Fatal("send on reset connection succeeded")
	}
}
