package netstack

import (
	"sync"

	"demikernel/internal/fabric"
)

// NeighborTable is an IP→MAC resolution table shared by the stacks of a
// sharded libOS. RSS hashes ARP traffic by source MAC, which would strand
// replies on whichever queue the sender's MAC happens to hash to; a
// sharded deployment instead steers ARP to shard 0 with a hardware
// filter (see catnip's sharded mode) and publishes what shard 0 learns
// here, where every sibling stack can read it.
//
// This is deliberately the only cross-shard state in the receive path,
// and it sits on the *miss* path only: each stack caches resolutions in
// its private ARP map, so steady-state packet processing never touches
// the shared table (§3.1: share-nothing on the data path, shared state
// only for rare control-plane work).
type NeighborTable struct {
	mu sync.RWMutex
	m  map[IPv4Addr]fabric.MAC
}

// NewNeighborTable returns an empty shared neighbor table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{m: make(map[IPv4Addr]fabric.MAC)}
}

// Learn records (or refreshes) a resolution.
func (t *NeighborTable) Learn(ip IPv4Addr, mac fabric.MAC) {
	t.mu.Lock()
	t.m[ip] = mac
	t.mu.Unlock()
}

// Lookup returns the MAC for ip, if known.
func (t *NeighborTable) Lookup(ip IPv4Addr) (fabric.MAC, bool) {
	t.mu.RLock()
	mac, ok := t.m[ip]
	t.mu.RUnlock()
	return mac, ok
}

// Len reports how many resolutions the table holds.
func (t *NeighborTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
