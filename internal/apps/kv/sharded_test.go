package kv

import (
	"bytes"
	"fmt"
	"testing"

	demi "demikernel"
	"demikernel/internal/telemetry"
)

// shardedHarness is a 4-shard catnip KV server plus an RSS-aligned
// client, all polling in the background.
type shardedHarness struct {
	cluster *demi.Cluster
	node    *demi.ShardedNode
	server  *ShardedServer
	client  *ShardedClient
	stops   []func()
}

func newShardedHarness(t *testing.T, shards int, seed int64) *shardedHarness {
	t.Helper()
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1), demi.WithShards(shards)).Sharded
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))

	server := NewShardedServer(srvNode.Libs, &c.Model, srvNode.Mesh())
	const port = 6379
	if err := server.Listen(port); err != nil {
		t.Fatalf("listen: %v", err)
	}
	stop := make(chan struct{})
	wg := server.Run(stop)
	h := &shardedHarness{cluster: c, node: srvNode, server: server}
	h.stops = append(h.stops, func() { close(stop); wg.Wait() })
	h.stops = append(h.stops, cliNode.Background())

	client, err := NewShardedClient(cliNode.LibOS, shards, func(i int) (demi.QD, error) {
		return c.Router().DialShard(cliNode, srvNode, port, i, uint16(1000*i+17))
	})
	if err != nil {
		h.close()
		t.Fatalf("dial: %v", err)
	}
	h.client = client
	return h
}

func (h *shardedHarness) close() {
	for i := len(h.stops) - 1; i >= 0; i-- {
		h.stops[i]()
	}
}

func TestKeyShardPartition(t *testing.T) {
	// Deterministic, full-range, and roughly balanced.
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		s := KeyShard(fmt.Sprintf("key-%d", i), 4)
		if s < 0 || s >= 4 {
			t.Fatalf("KeyShard out of range: %d", s)
		}
		counts[s]++
	}
	for i, n := range counts {
		if n < 600 || n > 1400 {
			t.Fatalf("shard %d owns %d of 4000 keys: partition too skewed", i, n)
		}
	}
	if KeyShard("anything", 1) != 0 || KeyShard("anything", 0) != 0 {
		t.Fatal("degenerate shard counts must map to 0")
	}
}

// TestShardedKVAligned drives an RSS-aligned workload: every request
// travels over the connection of its key's owning shard, so no request
// should ever cross the mesh.
func TestShardedKVAligned(t *testing.T) {
	h := newShardedHarness(t, 4, 1)
	defer h.close()

	const n = 64
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, err := h.client.Set(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
	if got := h.server.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, _, found, err := h.client.Get(k)
		if err != nil || !found {
			t.Fatalf("get %s: found=%v err=%v", k, found, err)
		}
		if want := []byte(fmt.Sprintf("val-%d", i)); !bytes.Equal(v, want) {
			t.Fatalf("get %s = %q, want %q", k, v, want)
		}
	}

	// Share-nothing checks: ops landed on every shard, keys live on
	// their owners, and the mesh stayed silent.
	totalOps, totalKeys := int64(0), int64(0)
	for i := 0; i < h.server.Size(); i++ {
		s := h.server.StatsOf(i)
		if s.ForwardedOut != 0 || s.ForwardedIn != 0 {
			t.Fatalf("shard %d forwarded (out=%d in=%d) under an aligned workload", i, s.ForwardedOut, s.ForwardedIn)
		}
		if s.Connections != 1 {
			t.Fatalf("shard %d accepted %d conns, want exactly its own", i, s.Connections)
		}
		if s.Gets == 0 || s.Sets == 0 {
			t.Fatalf("shard %d served no traffic: RSS alignment is broken (stats=%+v)", i, s)
		}
		if s.BusyVirtNS == 0 {
			t.Fatalf("shard %d accumulated no virtual busy time", i)
		}
		totalOps += s.Gets + s.Sets
		totalKeys += s.Keys
	}
	if totalOps != 2*n {
		t.Fatalf("total ops = %d, want %d", totalOps, 2*n)
	}
	if totalKeys != n {
		t.Fatalf("total keys = %d, want %d", totalKeys, n)
	}

	for i := 0; i < n; i += 7 {
		k := fmt.Sprintf("key-%d", i)
		if found, err := h.client.Del(k); err != nil || !found {
			t.Fatalf("del %s: found=%v err=%v", k, found, err)
		}
	}
}

// TestShardedKVForwarding sends requests over deliberately wrong
// connections: the receiving shard must relay them across the mesh to
// the owner and return the owner's answer.
func TestShardedKVForwarding(t *testing.T) {
	h := newShardedHarness(t, 4, 2)
	defer h.close()

	const n = 32
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("fwd-%d", i)
		wrong := (KeyShard(k, 4) + 1) % 4
		if _, err := h.client.SetOn(wrong, k, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatalf("misdirected set %s: %v", k, err)
		}
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("fwd-%d", i)
		wrong := (KeyShard(k, 4) + 2) % 4
		v, found, err := h.client.GetOn(wrong, k)
		if err != nil || !found {
			t.Fatalf("misdirected get %s: found=%v err=%v", k, found, err)
		}
		if want := []byte(fmt.Sprintf("v-%d", i)); !bytes.Equal(v, want) {
			t.Fatalf("misdirected get %s = %q, want %q", k, v, want)
		}
	}

	var out, in, drops int64
	for i := 0; i < 4; i++ {
		s := h.server.StatsOf(i)
		out += s.ForwardedOut
		in += s.ForwardedIn
		drops += s.ForwardDrops
	}
	if out != 2*n || in != 2*n {
		t.Fatalf("forwards out=%d in=%d, want both %d", out, in, 2*n)
	}
	if drops != 0 {
		t.Fatalf("forward drops = %d in a healthy run", drops)
	}
	// Keys must live on their owners regardless of the arrival shard.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("fwd-%d", i)
		owner := KeyShard(k, 4)
		if h.server.StatsOf(owner).Keys == 0 {
			t.Fatalf("owner shard %d of %s holds no keys", owner, k)
		}
	}
	// And a direct aligned read still sees the forwarded write.
	v, _, found, err := h.client.Get("fwd-0")
	if err != nil || !found || !bytes.Equal(v, []byte("v-0")) {
		t.Fatalf("aligned read of forwarded write: %q found=%v err=%v", v, found, err)
	}
}

// TestShardedKVTelemetry spot-checks the per-shard registry surface the
// demi-stat aggregation relies on.
func TestShardedKVTelemetry(t *testing.T) {
	h := newShardedHarness(t, 2, 3)
	defer h.close()
	if _, err := h.client.Set("a", []byte("1")); err != nil {
		t.Fatalf("set: %v", err)
	}

	reg := telemetry.NewRegistry()
	h.node.RegisterTelemetry(reg, "demi")
	h.server.RegisterTelemetry(reg, "demi.shard")
	snap := reg.Snapshot()
	for _, name := range []string{
		"demi.nic.rx_frames",
		"demi.shard.0.netstack.frames_in",
		"demi.shard.1.netstack.frames_in",
		"demi.shard.0.xs_sent",
		"demi.shard." + fmt.Sprint(KeyShard("a", 2)) + ".kv_sets",
		"demi.shard.0.completer.wakeups",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("telemetry missing %q; have:\n%s", name, snap.String())
		}
	}
	shardIdx := KeyShard("a", 2)
	if v, _ := snap.Get(fmt.Sprintf("demi.shard.%d.kv_sets", shardIdx)); v != 1 {
		t.Fatalf("kv_sets = %d, want 1", v)
	}
}
