package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTracerDisabledRecordsNothing: the disabled tracer must be inert —
// call sites stay compiled into the datapath, so "off" has to mean off.
func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer(32)
	tr.Instant("cat", "ev", 1, 2)
	tr.Span("cat", "sp", 1, 100, 50, 0)
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("disabled tracer recorded: len=%d total=%d", tr.Len(), tr.Total())
	}
	if evs := tr.Events(); len(evs) != 0 {
		t.Fatalf("disabled tracer has events: %v", evs)
	}
}

// TestTracerRingWraparound pins the bounded-ring contract: emitting more
// events than capacity keeps only the newest `cap` events, Total still
// counts every emission, and Events() returns oldest-first.
func TestTracerRingWraparound(t *testing.T) {
	const capacity = 16 // NewTracer's minimum
	tr := NewTracer(capacity)
	tr.Enable()
	const emitted = capacity*2 + 5 // wrap twice and change
	for i := 0; i < emitted; i++ {
		tr.Instant("wrap", "ev", int32(i), int64(i))
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("Len = %d, want %d (ring must stay bounded)", got, capacity)
	}
	if got := tr.Total(); got != emitted {
		t.Fatalf("Total = %d, want %d (overwritten events still count)", got, emitted)
	}
	evs := tr.Events()
	if len(evs) != capacity {
		t.Fatalf("Events returned %d, want %d", len(evs), capacity)
	}
	// The survivors are exactly the newest `capacity` emissions, in order.
	for i, e := range evs {
		want := int64(emitted - capacity + i)
		if e.Arg != want {
			t.Fatalf("Events[%d].Arg = %d, want %d (not oldest-first after wrap)", i, e.Arg, want)
		}
	}
}

// TestTracerResetClears: Reset empties the ring and the total without
// touching the enable state.
func TestTracerResetClears(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	for i := 0; i < 40; i++ {
		tr.Instant("c", "e", 0, int64(i))
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("after Reset: len=%d total=%d", tr.Len(), tr.Total())
	}
	if !tr.Enabled() {
		t.Fatal("Reset disabled the tracer")
	}
	tr.Instant("c", "e", 0, 99)
	if evs := tr.Events(); len(evs) != 1 || evs[0].Arg != 99 {
		t.Fatalf("post-Reset emission lost: %v", evs)
	}
}

// TestTracerSpanClampsNegativeDur: a negative duration (clock skew between
// the caller's stamps) must clamp to zero, not poison the export.
func TestTracerSpanClampsNegativeDur(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	tr.Span("c", "s", 0, 1000, -50, 0)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Dur != 0 {
		t.Fatalf("negative dur not clamped: %v", evs)
	}
}

// TestTracerChromeJSONExport: the export must be valid JSON in the
// chrome://tracing array format — "X" complete events with ts/dur in
// microseconds rebased to the earliest event, "i" instants — so a trace
// from any run loads in chrome://tracing or Perfetto unmodified.
func TestTracerChromeJSONExport(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	tr.Span("queue", "op", 7, 5_000_000, 2_000, 123) // starts at 5ms, 2µs long
	tr.Instant("nic", "drop", 2, 9)
	tr.Span("queue", "op", 8, 5_004_000, 1_000, 456) // 4µs after the first

	var sb strings.Builder
	if err := tr.ExportChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 3 {
		t.Fatalf("exported %d events, want 3", len(events))
	}
	first := events[0]
	if first["ph"] != "X" {
		t.Fatalf(`first event ph = %v, want "X"`, first["ph"])
	}
	if ts := first["ts"].(float64); ts != 0 {
		t.Fatalf("ts not rebased: first event ts = %v, want 0", ts)
	}
	if dur := first["dur"].(float64); dur != 2 {
		t.Fatalf("dur = %vµs, want 2 (2000ns)", dur)
	}
	if tid := first["tid"].(float64); tid != 7 {
		t.Fatalf("tid = %v, want 7", tid)
	}
	if arg := first["args"].(map[string]any)["v"].(float64); arg != 123 {
		t.Fatalf("args.v = %v, want 123", arg)
	}
	if events[1]["ph"] != "i" {
		t.Fatalf(`instant ph = %v, want "i"`, events[1]["ph"])
	}
	if ts := events[2]["ts"].(float64); ts != 4 {
		t.Fatalf("third event ts = %vµs, want 4 (rebased from +4000ns)", ts)
	}
}

// TestTracerEmptyExportIsValidJSON: exporting an empty ring still yields
// a parseable (empty) array.
func TestTracerEmptyExportIsValidJSON(t *testing.T) {
	var sb strings.Builder
	if err := NewTracer(16).ExportChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("empty export is not valid JSON: %v\n%q", err, sb.String())
	}
	if len(events) != 0 {
		t.Fatalf("empty tracer exported %d events", len(events))
	}
}

// TestTracerConcurrentEmit: many goroutines emitting and toggling while a
// reader snapshots — meaningful under -race; also checks no emission is
// lost while continuously enabled.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Instant("c", "e", int32(w), int64(i))
				if i%100 == 0 {
					_ = tr.Events()
					_ = tr.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != workers*per {
		t.Fatalf("Total = %d, want %d (emissions lost under contention)", got, workers*per)
	}
	if got := tr.Len(); got != 64 {
		t.Fatalf("Len = %d, want full ring (64)", got)
	}
}
