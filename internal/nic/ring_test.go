package nic

import (
	"testing"

	"demikernel/internal/fabric"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{511, 512}, {512, 512}, {513, 1024}, {2000, 2048},
	}
	for _, c := range cases {
		if got := nextPow2(c.in); got != c.want {
			t.Errorf("nextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func frameN(n byte) fabric.Frame {
	return fabric.Frame{Data: []byte{n}}
}

func TestRingTable(t *testing.T) {
	cases := []struct {
		name      string
		depth     int
		wantCap   int
		pushes    int // frames pushed up front
		wantOK    int // pushes that should succeed
		pops      int // pops attempted after the pushes
		wantPops  int // pops that should succeed
		thenPush  int // pushes after the pops (exercises wrap)
		wantPush2 int
	}{
		{name: "empty pop", depth: 4, wantCap: 4, pushes: 0, wantOK: 0, pops: 2, wantPops: 0},
		{name: "fill to full then overflow", depth: 4, wantCap: 4, pushes: 6, wantOK: 4, pops: 4, wantPops: 4},
		{name: "rounds non-pow2 depth up", depth: 5, wantCap: 8, pushes: 9, wantOK: 8, pops: 8, wantPops: 8},
		{name: "wraparound reuse", depth: 4, wantCap: 4, pushes: 3, wantOK: 3, pops: 3, wantPops: 3, thenPush: 4, wantPush2: 4},
		{name: "depth one", depth: 1, wantCap: 1, pushes: 2, wantOK: 1, pops: 1, wantPops: 1, thenPush: 1, wantPush2: 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRing(c.depth)
			if len(r.buf) != c.wantCap {
				t.Fatalf("newRing(%d): cap %d, want %d", c.depth, len(r.buf), c.wantCap)
			}
			if r.mask != c.wantCap-1 {
				t.Fatalf("mask %d, want %d", r.mask, c.wantCap-1)
			}
			ok := 0
			for i := 0; i < c.pushes; i++ {
				if r.push(frameN(byte(i))) {
					ok++
				}
			}
			if ok != c.wantOK {
				t.Fatalf("pushed %d ok, want %d", ok, c.wantOK)
			}
			if r.len() != c.wantOK {
				t.Fatalf("len %d after pushes, want %d", r.len(), c.wantOK)
			}
			got := 0
			for i := 0; i < c.pops; i++ {
				f, popped := r.pop()
				if !popped {
					continue
				}
				// FIFO order: payload byte must match pop order.
				if f.Data[0] != byte(got) {
					t.Fatalf("pop %d returned frame %d, want %d", got, f.Data[0], got)
				}
				got++
			}
			if got != c.wantPops {
				t.Fatalf("popped %d, want %d", got, c.wantPops)
			}
			ok2 := 0
			for i := 0; i < c.thenPush; i++ {
				if r.push(frameN(byte(100 + i))) {
					ok2++
				}
			}
			if ok2 != c.wantPush2 {
				t.Fatalf("second push round: %d ok, want %d", ok2, c.wantPush2)
			}
			// Drain everything; verify FIFO across the wrap.
			prev := -1
			for {
				f, popped := r.pop()
				if !popped {
					break
				}
				if int(f.Data[0]) <= prev {
					t.Fatalf("out-of-order pop: %d after %d", f.Data[0], prev)
				}
				prev = int(f.Data[0])
			}
			if r.len() != 0 {
				t.Fatalf("len %d after drain, want 0", r.len())
			}
		})
	}
}

func TestRingPopClearsSlot(t *testing.T) {
	r := newRing(2)
	r.push(frameN(1))
	r.pop()
	if r.buf[0].Data != nil {
		t.Fatal("pop left a frame reference in the ring slot")
	}
}
