package main

// The -storage view: run the storage-pushdown workload — a block-resident
// sorted index over the catfish blob store, GETs issued through the
// lookup queue both with the step function pushed into the NVMe
// completion path and with the host-CPU fallback — and render what the
// telemetry saw: crossings per GET in each mode, the spdk.pushdown.*
// counter diff, and the pooled-buffer accounting underneath it.
//
// The panel is also an invariant audit (tier1 runs it): a pushdown GET
// must cost exactly one app↔libOS crossing at any depth, the fallback
// must pay one per hop, both modes must return byte-identical values,
// and after quiesce no traversal may be left device-side and no pooled
// buffer may be outstanding. It exits non-zero on any violation.

import (
	"bytes"
	"fmt"

	demi "demikernel"
	"demikernel/internal/libos/catfish"
	"demikernel/internal/metrics"
	"demikernel/internal/offload"
	"demikernel/internal/queue"
	"demikernel/internal/simclock"
	"demikernel/internal/spdk"
	"demikernel/internal/telemetry"
)

// storageGet runs one Push+Pop GET round trip through a lookup queue,
// polling the transport until the result lands.
func storageGet(tr *catfish.Transport, q *catfish.LookupQueue, key []byte) ([]byte, simclock.Lat, error) {
	s := tr.AllocSGA(len(key))
	copy(s.Segments[0].Buf, key)
	q.Push(s, 0, func(queue.Completion) {})
	var c queue.Completion
	got := false
	q.Pop(func(qc queue.Completion) { c = qc; got = true })
	for i := 0; !got; i++ {
		tr.Poll()
		if i > 1_000_000 {
			return nil, 0, fmt.Errorf("lookup hung")
		}
	}
	if c.Err != nil {
		return nil, 0, c.Err
	}
	v := append([]byte(nil), c.SGA.Bytes()...)
	c.SGA.Free()
	return v, c.Cost, nil
}

// runStorage drives n GETs over a depth-`depth` index in both lookup
// modes, renders the dashboard, and audits the pushdown invariants.
func runStorage(seed int64, n, depth int) error {
	nKeys := 1 << (depth + 1) // fanout 2: 2^(d+1) keys build depth d
	var pairs []spdk.KV
	for i := 0; i < nKeys; i++ {
		pairs = append(pairs, spdk.KV{
			Key: []byte(fmt.Sprintf("key-%05d", i)),
			Val: []byte(fmt.Sprintf("value-%d", i)),
		})
	}

	type rig struct {
		tr  *catfish.Transport
		q   *catfish.LookupQueue
		reg *telemetry.Registry
	}
	open := func(pushdown bool, seedOff int64) (*rig, *spdk.Index, error) {
		c := demi.NewCluster(seed + seedOff)
		node, err := c.Spawn(demi.Catfish, demi.WithBlocks(0))
		if err != nil {
			return nil, nil, err
		}
		tr := node.Catfish
		reg := telemetry.NewRegistry()
		tr.RegisterTelemetry(reg, "catfish")
		idx, err := tr.BuildIndex(pairs, 2)
		if err != nil {
			return nil, nil, err
		}
		q, err := tr.OpenLookup(idx, offload.IndexLookup(), catfish.LookupConfig{Pushdown: pushdown})
		if err != nil {
			return nil, nil, err
		}
		return &rig{tr: tr, q: q, reg: reg}, idx, nil
	}
	pd, idx, err := open(true, 0)
	if err != nil {
		return err
	}
	host, _, err := open(false, 1)
	if err != nil {
		return err
	}

	before := pd.reg.Snapshot()
	var pdH, hostH metrics.Histogram
	var miscompares int
	for i := 0; i < n; i++ {
		k := pairs[i%nKeys].Key
		v1, c1, err := storageGet(pd.tr, pd.q, k)
		if err != nil {
			return fmt.Errorf("pushdown GET %d: %w", i, err)
		}
		v2, c2, err := storageGet(host.tr, host.q, k)
		if err != nil {
			return fmt.Errorf("host GET %d: %w", i, err)
		}
		if !bytes.Equal(v1, v2) || !bytes.Equal(v1, pairs[i%nKeys].Val) {
			miscompares++
		}
		pdH.Record(c1)
		hostH.Record(c2)
	}
	// A miss must be typed, not a hang or a zero-value hit.
	if _, _, err := storageGet(pd.tr, pd.q, []byte("no-such-key")); err != spdk.ErrNotFound {
		return fmt.Errorf("pushdown miss returned %v, want spdk.ErrNotFound", err)
	}
	if _, _, err := storageGet(host.tr, host.q, []byte("no-such-key")); err != spdk.ErrNotFound {
		return fmt.Errorf("host miss returned %v, want spdk.ErrNotFound", err)
	}
	after := pd.reg.Snapshot()

	fmt.Printf("storage run: %d GETs over a depth-%d index (%d keys, fanout 2, seed %d)\n\n",
		n, idx.Depth, nKeys, seed)

	ps, hs := pd.q.Stats(), host.q.Stats()
	pdCross := float64(ps.Crossings) / float64(ps.Lookups)
	hostCross := float64(hs.Crossings) / float64(hs.Lookups)
	s1, s2 := pdH.Summarize(), hostH.Summarize()
	tbl := metrics.NewTable("Lookup modes: device pushdown vs host-CPU traversal",
		"mode", "GETs", "crossings/GET", "p50", "p99")
	tbl.AddRow("pushdown", ps.Lookups, fmt.Sprintf("%.2f", pdCross), s1.P50, s1.P99)
	tbl.AddRow("host fallback", hs.Lookups, fmt.Sprintf("%.2f", hostCross), s2.P50, s2.P99)
	fmt.Println(tbl.String())

	dev := pd.tr.Device().PushdownStats()
	pool := pd.tr.Pool().Stats()
	tbl2 := metrics.NewTable("Device + pool accounting (pushdown node)",
		"counter", "value", "meaning")
	tbl2.AddRow("pushdown.resubmits", dev.Resubmits, "device-internal hops that never crossed to the host")
	tbl2.AddRow("pushdown.hops_saved", dev.HopsSaved, "host round trips avoided vs app-level traversal")
	tbl2.AddRow("pushdown.hits", dev.Hits, "lookups that returned a value")
	tbl2.AddRow("pushdown.misses", dev.Misses, "lookups that returned key-not-found")
	tbl2.AddRow("pushdown.inflight", dev.Inflight, "traversals still device-side (must be 0)")
	tbl2.AddRow("pool.pooled", pool.Pooled, "SGA allocations served from recycled storage")
	tbl2.AddRow("pool.outstanding", pool.Outstanding, "live pooled buffers (must be 0)")
	fmt.Println(tbl2.String())

	fmt.Println("== catfish counters, pushdown node (delta over the run) ==")
	fmt.Print(after.Diff(before).NonZero().String())
	fmt.Println()

	// The invariant audit — any failure here means the protection
	// boundary or the accounting is broken.
	expected := float64(idx.Depth + 1)
	var violations []string
	fail := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	if miscompares != 0 {
		fail("%d GETs returned different bytes across modes", miscompares)
	}
	if pdCross != 1 {
		fail("pushdown crossings/GET = %.2f, want exactly 1", pdCross)
	}
	if hostCross != expected {
		fail("host crossings/GET = %.2f, want %.0f (depth+1)", hostCross, expected)
	}
	if depth >= 4 && hostCross < 3*pdCross {
		fail("crossing fence: host %.2f vs pushdown %.2f is below 3x", hostCross, pdCross)
	}
	if dev.Resubmits != int64(idx.Depth)*dev.Lookups {
		fail("resubmits = %d, want depth*lookups = %d", dev.Resubmits, int64(idx.Depth)*dev.Lookups)
	}
	if dev.Inflight != 0 {
		fail("%d traversals leaked device-side", dev.Inflight)
	}
	for name, r := range map[string]*rig{"pushdown": pd, "host": host} {
		if out := r.tr.Pool().Outstanding(); out != 0 {
			fail("%s node leaked %d pooled buffers", name, out)
		}
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("VIOLATION: %s\n", v)
		}
		return fmt.Errorf("%d storage invariant(s) violated", len(violations))
	}
	fmt.Printf("storage invariants hold: 1 crossing/GET pushed down vs %.0f host-side (%.1fx), values byte-identical, nothing leaked\n",
		expected, hostCross/pdCross)
	return nil
}
