// Command demi-kv runs the Redis-like key-value store over a chosen
// library OS inside one simulated cluster, drives a workload against it,
// and prints latency and server statistics. It is the executable face of
// the paper's running example.
//
// Usage:
//
//	demi-kv [-libos catnip|catnap|catmint] [-ops N] [-value BYTES]
//	        [-workload fixed|uniform|ycsb-b] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	demi "demikernel"
	"demikernel/internal/apps/kv"
	"demikernel/internal/metrics"
	"demikernel/internal/telemetry"
	"demikernel/internal/workload"
)

func main() {
	libos := flag.String("libos", "catnip", "library OS: catnip, catnap, or catmint")
	ops := flag.Int("ops", 200, "GET operations to issue")
	valueSize := flag.Int("value", 4096, "value size in bytes (fixed workload)")
	wl := flag.String("workload", "fixed", "workload: fixed, uniform, or ycsb-b")
	seed := flag.Int64("seed", 1, "cluster seed")
	stats := flag.Bool("stats", false, "print per-layer telemetry counters and qtoken span tables")
	flag.Parse()

	if err := run(*libos, *ops, *valueSize, *wl, *seed, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "demi-kv: %v\n", err)
		os.Exit(1)
	}
}

func run(libos string, ops, valueSize int, wl string, seed int64, stats bool) error {
	cluster := demi.NewCluster(seed)
	var srvNode, cliNode *demi.Node
	mk := func(host byte) (*demi.Node, error) {
		switch libos {
		case "catnip":
			return cluster.MustSpawn(demi.Catnip, demi.WithHost(host)), nil
		case "catnap":
			return cluster.MustSpawn(demi.Catnap, demi.WithHost(host)), nil
		case "catmint":
			return cluster.MustSpawn(demi.Catmint, demi.WithHost(host)), nil
		default:
			return nil, fmt.Errorf("unknown libOS %q", libos)
		}
	}
	srvNode, err := mk(1)
	if err != nil {
		return err
	}
	cliNode, err = mk(2)
	if err != nil {
		return err
	}

	server := kv.NewServer(srvNode.LibOS, &cluster.Model)
	if err := server.Listen(6379); err != nil {
		return err
	}
	defer srvNode.Background()()
	defer cliNode.Background()()
	stop := make(chan struct{})
	defer close(stop)
	go server.Run(stop)

	client := kv.NewClient(cliNode.LibOS)
	if err := client.Connect(cluster.AddrOf(srvNode, 6379)); err != nil {
		return err
	}

	var reg *telemetry.Registry
	var before telemetry.Snapshot
	if stats {
		reg = telemetry.NewRegistry()
		cluster.Switch.RegisterTelemetry(reg, "fabric")
		srvNode.RegisterTelemetry(reg, "server")
		cliNode.RegisterTelemetry(reg, "client")
		srvNode.Spans().SetName(libos + " server")
		cliNode.Spans().SetName(libos + " client")
		srvNode.Spans().Enable()
		cliNode.Spans().Enable()
		before = reg.Snapshot()
	}

	const keys = 64
	var gen *workload.Generator
	switch wl {
	case "fixed":
		gen = workload.NewGenerator(workload.NewUniformKeys(keys, seed),
			workload.FixedSize(valueSize), 0.75, seed+1)
	case "uniform":
		gen = workload.UniformSmall(keys, seed)
	case "ycsb-b":
		gen = workload.YCSBStyleB(keys, seed)
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}
	fmt.Printf("demi-kv: %s libOS, %q workload, %d keys, %d ops\n", libos, wl, keys, ops)

	// Preload the keyspace so reads hit.
	var setH, getH metrics.Histogram
	for i := 0; i < keys; i++ {
		cost, err := client.Set(fmt.Sprintf("key-%06d", i), make([]byte, valueSize))
		if err != nil {
			return fmt.Errorf("preload set: %w", err)
		}
		setH.Record(cost)
	}
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if op.IsRead {
			_, cost, found, err := client.Get(op.Key)
			if err != nil {
				return fmt.Errorf("get: %w", err)
			}
			if !found {
				return fmt.Errorf("get %d: key %q missing after preload", i, op.Key)
			}
			getH.Record(cost)
		} else {
			cost, err := client.Set(op.Key, make([]byte, op.ValueLen))
			if err != nil {
				return fmt.Errorf("set: %w", err)
			}
			setH.Record(cost)
		}
	}

	tbl := metrics.NewTable("virtual request latency", "op", "count", "p50", "p99", "mean")
	s := setH.Summarize()
	g := getH.Summarize()
	tbl.AddRow("SET", s.Count, s.P50, s.P99, s.Mean)
	tbl.AddRow("GET", g.Count, g.P50, g.P99, g.Mean)
	fmt.Println(tbl.String())

	st := server.Stats()
	fmt.Printf("server: %d connections, %d sets, %d gets, %d bytes stored\n",
		st.Connections, st.Sets, st.Gets, st.BytesStored)

	if stats {
		fmt.Println("\n== per-layer counters (delta over the run) ==")
		fmt.Print(reg.Snapshot().Diff(before).NonZero().String())
		fmt.Println()
		fmt.Println(cliNode.Spans().Table().String())
		fmt.Println(srvNode.Spans().Table().String())
	}
	return nil
}
