GO ?= go

.PHONY: all tier1 vet build test race statsmoke chaos bench benchsmoke benchall report clean

all: tier1

## tier1: the gate every PR must keep green — vet, build, full test
## suite, a short -race pass over the concurrency-heavy packages
## (the chaos engine, the user TCP stack, the pinned-memory allocator,
## the telemetry instruments, and the qtoken completer), a counter-
## consistency smoke (telemetry must conserve frames: TXed == delivered
## + every attributed drop, at the fabric, per NIC, and per stack), and
## a one-iteration smoke of the hot-path benchmark suite so a broken
## benchmark rig fails the gate, not the nightly bench run.
tier1: vet build test race statsmoke benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/netstack/ ./internal/membuf/ ./internal/telemetry/ ./internal/queue/

## statsmoke: run an impaired echo workload and check that the telemetry
## counters obey the frame-conservation laws end to end (demi-stat
## -selftest). A leak anywhere in the datapath bookkeeping fails tier1.
statsmoke:
	$(GO) run ./cmd/demi-stat -selftest

## chaos: just the fault-injection suite (root soak tests + engine).
chaos:
	$(GO) test -run 'TestChaos' -count=1 ./...

## bench: run the hot-path regression suite and write the machine-
## readable result stream to BENCH_hotpath.json. Compare against the
## committed baseline to spot allocs/op or B/op regressions.
bench:
	$(GO) test -run xxx -bench 'BenchmarkHotPath' -benchmem -json . | tee BENCH_hotpath.json

## benchsmoke: one iteration of every hot-path benchmark; part of tier1.
benchsmoke:
	$(GO) test -run xxx -bench 'BenchmarkHotPath' -benchtime=1x .

## benchall: every benchmark in the repo (E1..E13 experiments + hot path).
benchall:
	$(GO) test -bench=. -benchmem .

## report: regenerate EXPERIMENTS.md's measured tables.
report:
	$(GO) run ./cmd/demi-bench -md EXPERIMENTS.md

clean:
	$(GO) clean ./...
