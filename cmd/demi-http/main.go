// Command demi-http drives the HTTP/1.1 server that runs directly on
// catnip queues — the paper's "real application on the bypass path"
// workload — in two modes:
//
// The default mode is a production-shaped driver: a 2-shard catnip
// server (shard 0 on the legacy per-op token path, shard 1 on the
// syscall-free SQ/CQ rings) serving a Zipf-popular cached object tree
// to keep-alive clients with connection churn and deliberately slow
// readers, with a full crash/restart of the server node halfway
// through. It prints the httpd.* telemetry counters per shard and the
// per-route service-latency table with the p99/p99.9 tail the paper
// cares about, plus the rx_ready_stalls count that shows the slow
// readers being converted into TCP backpressure instead of unbounded
// buffering.
//
// With -bench it instead measures requests/sec on a single-goroutine,
// manually-pumped rig (no background pollers, so allocs are exact):
// the per-op token path versus ring batches of 1/8/32, writing the
// machine-readable results to BENCH_http.json. The run fails (exit 1)
// unless the ring path sustains >= 2x the per-op requests/sec at some
// batch >= 8 with zero steady-state allocations per request — the
// regression fence `make bench` enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	demi "demikernel"
	"demikernel/internal/apps/httpd"
	"demikernel/internal/metrics"
	"demikernel/internal/queue"
	"demikernel/internal/telemetry"
	"demikernel/internal/uring"
	"demikernel/internal/workload"
)

const httpPort = 8080

func main() {
	seed := flag.Int64("seed", 42, "deterministic seed for the workload")
	n := flag.Int("n", 2000, "requests to issue in driver mode")
	bench := flag.Bool("bench", false, "run the per-op vs ring benchmark instead of the driver")
	out := flag.String("out", "BENCH_http.json", "where -bench writes its results")
	flag.Parse()

	if *bench {
		if err := runBench(*seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "demi-http: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runDriver(*seed, *n); err != nil {
		fmt.Fprintf(os.Stderr, "demi-http: %v\n", err)
		os.Exit(1)
	}
}

// ---------------------------------------------------------------------
// Driver mode: production-shaped workload with a mid-run crash/restart.
// ---------------------------------------------------------------------

func runDriver(seed int64, total int) error {
	const nshards = 2
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1), demi.WithShards(nshards))
	cliNode := c.MustSpawn(demi.Catnip, demi.WithConfig(demi.NodeConfig{
		Host: 2, RxReadyCap: 8, RTO: 2 * time.Millisecond, MaxRetransmits: 8,
	}))
	cliNode.WaitTimeout = 5 * time.Second
	sh := srvNode.Sharded

	prod := workload.NewHTTPProduction(64, 1e6, seed)
	tree := httpd.NewTree()
	for _, o := range prod.Objects {
		tree.Add(o.Path, o.Body)
	}

	reg := telemetry.NewRegistry()
	srvNode.RegisterTelemetry(reg, "srv")
	servers := make([]*httpd.Server, nshards)
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < nshards; i++ {
		servers[i] = httpd.NewServer(sh.Libs[i], tree)
		servers[i].EnableLatency()
		servers[i].RegisterTelemetry(reg, fmt.Sprintf("httpd.%d", i))
		if err := servers[i].Listen(httpPort); err != nil {
			return err
		}
		if i == 1 {
			servers[i].EnableRing(64)
		}
		go servers[i].Run(stop)
	}
	stopCli := cliNode.Background()
	defer stopCli()

	var seedCtr uint16
	dial := func(shard int) (*httpd.Client, error) {
		seedCtr += 8
		qd, err := c.Router().DialShard(cliNode, sh, httpPort, shard, seedCtr)
		if err != nil {
			return nil, err
		}
		cl := httpd.NewClient(cliNode.LibOS)
		cl.Adopt(qd, c.AddrOf(srvNode, httpPort))
		return cl, nil
	}

	type lane struct {
		cl        *httpd.Client
		shard     int
		pending   int
		stallLeft int
	}
	const nclients = 4
	lanes := make([]*lane, nclients)
	for i := range lanes {
		cl, err := dial(i % nshards)
		if err != nil {
			return err
		}
		lanes[i] = &lane{cl: cl, shard: i % nshards}
	}
	drain := func(l *lane) error {
		for l.pending > 0 {
			resp, err := l.cl.ReadResponse()
			if err != nil {
				return fmt.Errorf("read (shard %d): %w", l.shard, err)
			}
			if resp.Status != 200 {
				return fmt.Errorf("status %d (shard %d)", resp.Status, l.shard)
			}
			l.pending--
		}
		return nil
	}

	issued := 0
	run := func(k int) error {
		for i := 0; i < k; i++ {
			l := lanes[i%nclients]
			if err := l.cl.SendRequest(prod.Paths.Next(), false); err != nil {
				return fmt.Errorf("send (shard %d): %w", l.shard, err)
			}
			l.pending++
			issued++
			// Stall episodes make this lane a slow reader: responses
			// pile up unread (bounded) before a burst drain.
			if l.stallLeft == 0 {
				l.stallLeft = prod.Stalls.NextStall()
			} else {
				l.stallLeft--
			}
			if l.stallLeft == 0 || l.pending >= 16 {
				if err := drain(l); err != nil {
					return err
				}
				if prod.Churn.ShouldClose() {
					l.cl.Close() //nolint:errcheck
					nc, err := dial(l.shard)
					if err != nil {
						return err
					}
					l.cl = nc
				}
			}
		}
		for _, l := range lanes {
			if err := drain(l); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Printf("demi-http: %d requests over %d keep-alive conns, 2 shards (0=per-op, 1=ring), crash at midpoint\n\n", total, nclients)
	if err := run(total / 2); err != nil {
		return err
	}
	if _, err := srvNode.Crash(); err != nil {
		return err
	}
	if err := srvNode.Restart(); err != nil {
		return err
	}
	servers[1].EnableRing(64) // rings die with the stack incarnation
	for _, l := range lanes {
		l.cl.Close() //nolint:errcheck // old QD died with the node
		l.pending = 0
		nc, err := dial(l.shard)
		if err != nil {
			return err
		}
		l.cl = nc
	}
	if err := run(total - total/2); err != nil {
		return err
	}

	var served int64
	for _, s := range servers {
		served += s.Stats().Requests
	}
	fmt.Printf("issued %d, served %d (conserved across the crash/restart)\n", issued, served)
	fmt.Printf("client rx_ready_stalls: %d (slow readers parked the bounded ready list)\n\n", cliNode.Catnip.RxStalls())

	snap := reg.Snapshot()
	tbl := metrics.NewTable("httpd counters per shard", "counter", "shard0 (per-op)", "shard1 (ring)")
	for _, name := range []string{
		"requests", "heads", "resp_200", "resp_206", "resp_400", "resp_404", "resp_416",
		"bytes_out", "conns_accepted", "conns_closed", "idle_reaped", "half_closes", "backlog_pauses",
	} {
		v0, _ := snap.Get("httpd.0." + name)
		v1, _ := snap.Get("httpd.1." + name)
		tbl.AddRow(name, v0, v1)
	}
	fmt.Println(tbl.String())
	for i, s := range servers {
		fmt.Printf("shard %d ", i)
		fmt.Println(s.LatencyTable().String())
		if h := s.RouteHistogram("obj"); h != nil && h.Count() > 0 {
			fmt.Printf("shard %d /obj tail CCDF: p50=%v p90=%v p99=%v p99.9=%v max=%v (n=%d)\n\n",
				i, h.Percentile(50), h.Percentile(90), h.Percentile(99),
				h.Percentile(99.9), h.Max(), h.Count())
		}
	}
	if served != int64(issued) {
		return fmt.Errorf("request accounting broken: issued %d, served %d", issued, served)
	}
	return nil
}

// ---------------------------------------------------------------------
// Bench mode: per-op vs ring on a manually-pumped single-goroutine rig.
// ---------------------------------------------------------------------

// benchRig mirrors the httpd benchmark rig in the test suite: a
// connected server/client pair whose data path is pumped only by this
// goroutine, so requests/sec and allocs/request are deterministic.
type benchRig struct {
	cli    *demi.LibOS
	srvLib *demi.LibOS
	srv    *httpd.Server
	cqd    demi.QD
	req    demi.SGA

	ring *uring.Pair
	sq   []uring.SQE
	cq   []uring.CQE
}

func newBenchRig(seed int64, ringCap int) (*benchRig, error) {
	c := demi.NewCluster(seed)
	srvNode := c.MustSpawn(demi.Catnip, demi.WithHost(1))
	cliNode := c.MustSpawn(demi.Catnip, demi.WithHost(2))

	objs := workload.HTTPObjects(4, workload.FixedSize(64), seed)
	tree := httpd.NewTree()
	for _, o := range objs {
		tree.Add(o.Path, o.Body)
	}
	srv := httpd.NewServer(srvNode.LibOS, tree)
	if err := srv.Listen(httpPort); err != nil {
		return nil, err
	}
	if ringCap > 0 {
		srv.EnableRing(ringCap)
	}
	cqd, err := cliNode.Socket()
	if err != nil {
		return nil, err
	}
	stop := srvNode.Background()
	err = cliNode.Connect(cqd, c.AddrOf(srvNode, httpPort))
	stop()
	if err != nil {
		return nil, err
	}
	r := &benchRig{
		cli: cliNode.LibOS, srvLib: srvNode.LibOS, srv: srv, cqd: cqd,
		req: demi.NewSGA([]byte("GET " + workload.HTTPObjectPath(0) + " HTTP/1.1\r\n\r\n")),
	}
	if ringCap > 0 {
		r.ring = cliNode.AttachRing(ringCap)
		r.sq = make([]uring.SQE, 0, 2*ringCap)
		r.cq = make([]uring.CQE, ringCap)
	}
	for i := 0; r.srv.Conns() == 0; i++ {
		r.cli.Poll()
		r.srvLib.Poll()
		r.srv.Step()
		if i > 1_000_000 {
			return nil, fmt.Errorf("bench rig: accept made no progress")
		}
	}
	return r, nil
}

func (r *benchRig) pump() {
	r.cli.Poll()
	r.srvLib.Poll()
	r.srv.Step()
	r.srvLib.Poll()
	r.cli.Poll()
}

// getOnce is one GET over the per-op token path.
func (r *benchRig) getOnce() error {
	pqt, err := r.cli.Pop(r.cqd)
	if err != nil {
		return err
	}
	if _, err := r.cli.Push(r.cqd, r.req); err != nil {
		return err
	}
	for i := 0; ; i++ {
		c, ok, err := r.cli.TryWait(pqt)
		if err != nil {
			return err
		}
		if ok {
			if c.Err != nil {
				return c.Err
			}
			c.SGA.Free()
			return nil
		}
		r.pump()
		if i > 1_000_000 {
			return fmt.Errorf("per-op GET made no progress")
		}
	}
}

// getBatch is `batch` pipelined GETs over the SQ/CQ rings.
func (r *benchRig) getBatch(batch int) error {
	sq := r.sq[:0]
	for i := 0; i < batch; i++ {
		sq = append(sq,
			uring.SQE{Op: queue.OpPush, QD: int32(r.cqd), Tag: uint64(i)<<1 | 1, SGA: r.req},
			uring.SQE{Op: queue.OpPop, QD: int32(r.cqd), Tag: uint64(i) << 1})
	}
	want, got := 2*batch, 0
	for it := 0; got < want || len(sq) > 0; it++ {
		if len(sq) > 0 {
			n, err := r.cli.SubmitBatch(r.ring, sq)
			if err != nil {
				return err
			}
			sq = sq[n:]
		}
		r.pump()
		n := r.cli.HarvestCQ(r.ring, r.cq)
		for i := 0; i < n; i++ {
			c := &r.cq[i]
			if c.Err != nil {
				return c.Err
			}
			if c.Tag&1 == 0 {
				c.SGA.Free()
			}
			got++
			*c = uring.CQE{}
		}
		if it > 1_000_000 {
			return fmt.Errorf("ring GET batch made no progress")
		}
	}
	return nil
}

type benchPoint struct {
	Path        string  `json:"path"`  // "per-op" or "ring"
	Batch       int     `json:"batch"` // 0 for per-op
	Requests    int     `json:"requests"`
	NsPerReq    float64 `json:"ns_per_req"`
	ReqPerSec   float64 `json:"req_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_req"` // steady-state heap allocs per request
}

type benchReport struct {
	Seed        int64        `json:"seed"`
	Points      []benchPoint `json:"points"`
	BestSpeedup float64      `json:"ring_speedup_at_batch_ge_8"`
	FencePassed bool         `json:"fence_passed"`
}

func runBench(seed int64, out string) error {
	const reqs = 4000

	// Per-op baseline.
	perOp, err := newBenchRig(seed, 0)
	if err != nil {
		return err
	}
	if err := perOp.getOnce(); err != nil { // warm pools
		return err
	}
	var opErr error
	allocs := testing.AllocsPerRun(200, func() {
		if err := perOp.getOnce(); err != nil {
			opErr = err
		}
	})
	if opErr != nil {
		return opErr
	}
	el := time.Duration(1 << 62)
	for trial := 0; trial < 3; trial++ { // best-of-3: wall-clock noise
		start := time.Now()
		for i := 0; i < reqs; i++ {
			if err := perOp.getOnce(); err != nil {
				return err
			}
		}
		if t := time.Since(start); t < el {
			el = t
		}
	}
	rep := benchReport{Seed: seed}
	rep.Points = append(rep.Points, benchPoint{
		Path: "per-op", Requests: reqs,
		NsPerReq:    float64(el.Nanoseconds()) / reqs,
		ReqPerSec:   float64(reqs) / el.Seconds(),
		AllocsPerOp: allocs,
	})

	// Ring path at increasing batch sizes.
	for _, batch := range []int{1, 8, 32} {
		rig, err := newBenchRig(seed, 256)
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ { // warm pools
			if err := rig.getBatch(batch); err != nil {
				return err
			}
		}
		var bErr error
		ba := testing.AllocsPerRun(100, func() {
			if err := rig.getBatch(batch); err != nil {
				bErr = err
			}
		})
		if bErr != nil {
			return bErr
		}
		iters := reqs / batch
		el := time.Duration(1 << 62)
		for trial := 0; trial < 3; trial++ { // best-of-3: wall-clock noise
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := rig.getBatch(batch); err != nil {
					return err
				}
			}
			if t := time.Since(start); t < el {
				el = t
			}
		}
		n := iters * batch
		rep.Points = append(rep.Points, benchPoint{
			Path: "ring", Batch: batch, Requests: n,
			NsPerReq:    float64(el.Nanoseconds()) / float64(n),
			ReqPerSec:   float64(n) / el.Seconds(),
			AllocsPerOp: ba / float64(batch),
		})
	}

	// Fence: at some batch >= 8 the ring path must sustain >= 2x the
	// per-op requests/sec, allocation-free per request.
	base := rep.Points[0].ReqPerSec
	for _, p := range rep.Points[1:] {
		if p.Batch < 8 {
			continue
		}
		if sp := p.ReqPerSec / base; sp > rep.BestSpeedup {
			rep.BestSpeedup = sp
		}
		if p.ReqPerSec/base >= 2.0 && p.AllocsPerOp == 0 {
			rep.FencePassed = true
		}
	}

	for _, p := range rep.Points {
		label := p.Path
		if p.Batch > 0 {
			label = fmt.Sprintf("%s b=%d", p.Path, p.Batch)
		}
		fmt.Printf("%-12s %8.0f req/s  %7.0f ns/req  %.2f allocs/req\n",
			label, p.ReqPerSec, p.NsPerReq, p.AllocsPerOp)
	}
	fmt.Printf("ring speedup at batch>=8: %.2fx (fence: >=2x, 0 allocs/req)\n", rep.BestSpeedup)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if !rep.FencePassed {
		return fmt.Errorf("bench fence failed: ring %.2fx per-op at batch>=8 (need >=2.0x with 0 allocs/req)", rep.BestSpeedup)
	}
	return nil
}
