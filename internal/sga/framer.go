package sga

// Framer incrementally reassembles framed SGAs from a byte stream that may
// be delivered in arbitrary fragments (as TCP does). It is the receiving
// half of the §5.2 framing: "the libOS could insert the needed framing
// itself (e.g., atop a TCP stream); however, the other end must be able to
// correctly parse the framing and recreate the scatter-gather array."
//
// A Framer is not safe for concurrent use; each connection owns one.
type Framer struct {
	buf []byte
	// segScratch is reused segment-header storage for decoding: the
	// decoded SGA only lives until clone copies it out, so one scratch
	// slice serves every frame and the steady-state pop path stops
	// allocating a []Segment per message.
	segScratch []Segment
	// decoded counts complete SGAs produced, for stats and tests.
	decoded int64
	// clone, when set, copies a decoded SGA out of the reassembly
	// buffer in place of the default SGA.Clone. LibOSes use it to copy
	// into pooled storage so the pop path recycles instead of
	// allocating. The input SGA aliases the framer's internal buffer;
	// the returned SGA must not.
	clone func(SGA) SGA
}

// SetClone overrides how decoded SGAs are copied out of the reassembly
// buffer (default: SGA.Clone). The function receives an SGA aliasing the
// framer's internal buffer and must return a deep copy.
func (f *Framer) SetClone(fn func(SGA) SGA) { f.clone = fn }

// Feed appends stream bytes to the framer's reassembly buffer.
func (f *Framer) Feed(b []byte) {
	f.buf = append(f.buf, b...)
}

// Next returns the next complete SGA from the reassembly buffer, or
// ok=false if no complete frame has arrived yet. The returned SGA owns
// fresh copies of its segments, so the caller may retain them while the
// framer keeps reusing its internal buffer. A corrupt frame returns a
// non-nil error; the framer is then poisoned and every later call returns
// the same error (a stream with corrupt framing cannot be re-synchronised,
// matching TCP stream semantics).
func (f *Framer) Next() (SGA, bool, error) {
	s, n, err := UnmarshalInto(f.buf, f.segScratch)
	if err == ErrShortBuffer {
		return SGA{}, false, nil
	}
	if err != nil {
		return SGA{}, false, err
	}
	f.segScratch = s.Segments[:0]
	// Copy out so the internal buffer can be compacted safely.
	var out SGA
	if f.clone != nil {
		out = f.clone(s)
	} else {
		out = s.Clone()
	}
	f.buf = f.buf[:copy(f.buf, f.buf[n:])]
	f.decoded++
	return out, true, nil
}

// Pending returns the number of buffered, not-yet-decoded bytes.
func (f *Framer) Pending() int { return len(f.buf) }

// Decoded returns the number of complete SGAs produced so far.
func (f *Framer) Decoded() int64 { return f.decoded }

// HasCompleteFrame reports whether a full frame is buffered, without
// consuming it. This models the §3.2 observation: with an atomic-unit
// abstraction, the application asks "is a whole request ready?" instead of
// re-parsing a stream prefix.
func (f *Framer) HasCompleteFrame() bool {
	_, _, err := Unmarshal(f.buf)
	return err == nil
}
